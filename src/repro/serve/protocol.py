"""Wire protocol of the ingestion service: newline-delimited JSON.

Every message -- client request, server reply, server push -- is one JSON
object on one line (``\\n``-terminated, UTF-8).  Requests carry an ``op``
field; replies carry ``ok`` (bool) and ``type``; pushes carry ``type``
only.  The protocol is strictly request/reply per connection (one reply
per request, in order) plus asynchronous pushes (``outliers``,
``stream-end``, ``drained``) to subscribed sessions, so a client can
drive it with a single reader that routes on the presence of ``ok``.

Client operations
-----------------

====================  =====================================================
``hello``             open a session: ``{"op":"hello","tenant":str,
                      "admission":"block"|"reject"}``
``register``          register an outlier query: ``{"op":"register",
                      "query":{"r":..,"k":..,"win":..,"slide":..,
                      "kind":"count"|"time"}}`` -> handle
``claim``             subscribe to an existing handle (resume path)
``deregister``        withdraw a handle this session registered/claimed
``points``            ingest records: ``{"op":"points","records":
                      [[seq,[v,..]],[seq,[v,..],time],..]}``
``subscribe``         receive per-boundary ``outliers`` pushes for this
                      session's handles
``stat``              engine statistics (last boundary, counters)
``end``               no more points from this session (its watermark
                      becomes +inf once its queue drains)
====================  =====================================================

Typed errors
------------

Failures are never silent: every rejected request gets
``{"ok":false,"type":"error","error":{"code":..,"message":..,...}}``
with a machine-readable ``code`` from :data:`ERROR_CODES` (and, for
``queue-full``, the queue ``capacity``/``pending`` so the producer can
size its retry).
"""

from __future__ import annotations

import json
from typing import Dict, FrozenSet, Mapping, Optional, Sequence

from ..core.queries import OutlierQuery
from ..streams.windows import COUNT, TIME, WindowSpec

__all__ = [
    "ERROR_CODES",
    "PROTOCOL_VERSION",
    "WireError",
    "decode_line",
    "encode",
    "error_message",
    "outliers_message",
    "parse_query",
]

#: protocol version announced in the ``hello`` reply
PROTOCOL_VERSION = 1

#: every typed rejection code the server can emit
ERROR_CODES = (
    "bad-request",      # unparseable JSON / missing required fields
    "unknown-op",       # op not in the table above
    "no-session",       # an op before hello
    "queue-full",       # admission rejected: bounded queue cannot take the batch
    "batch-too-large",  # a single points op larger than the queue bound
    "draining",         # server is shutting down; not admitting
    "no-queries",       # points sent while no query is registered
    "unknown-handle",   # claim/deregister of a handle that does not exist
    "not-owner",        # deregister of a handle another session owns
    "ended",            # points after this session sent end
)


class WireError(Exception):
    """A typed protocol rejection; becomes one ``error`` reply line.

    ``code`` is one of :data:`ERROR_CODES`; ``detail`` keys are merged
    into the error object verbatim (e.g. ``capacity``/``pending`` for
    ``queue-full``).
    """

    def __init__(self, code: str, message: str, **detail):
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message
        self.detail = detail

    def payload(self) -> dict:
        err = {"code": self.code, "message": self.message}
        err.update(self.detail)
        return {"ok": False, "type": "error", "error": err}


def encode(obj: Mapping) -> bytes:
    """One wire line for a message object (compact JSON + newline)."""
    return (json.dumps(obj, separators=(",", ":"), sort_keys=True)
            + "\n").encode("utf-8")


def decode_line(line: bytes) -> dict:
    """Parse one wire line; raises :class:`WireError` on garbage."""
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError("bad-request", f"unparseable line: {exc}") from None
    if not isinstance(obj, dict):
        raise WireError("bad-request", "a message must be a JSON object")
    return obj


def parse_query(payload) -> OutlierQuery:
    """Build the OutlierQuery described by a ``register`` payload."""
    if not isinstance(payload, Mapping):
        raise WireError("bad-request", "query must be an object with "
                        "r, k, win, slide (and optional kind, name)")
    try:
        kind = str(payload.get("kind", COUNT))
        if kind not in (COUNT, TIME):
            raise WireError(
                "bad-request",
                f"kind must be {COUNT!r} or {TIME!r}, got {kind!r}")
        return OutlierQuery(
            r=float(payload["r"]),
            k=int(payload["k"]),
            window=WindowSpec(win=int(payload["win"]),
                              slide=int(payload["slide"]), kind=kind),
            name=payload.get("name") or "",
        )
    except WireError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError("bad-request", f"bad query: {exc}") from None


def query_payload(query: OutlierQuery) -> dict:
    """The wire form of a query (``claim`` replies, ``stat``)."""
    return {
        "r": query.r, "k": query.k, "win": query.window.win,
        "slide": query.window.slide, "kind": query.kind,
        "name": query.name,
    }


def error_message(exc: WireError) -> bytes:
    return encode(exc.payload())


def ok_message(type_: str, **fields) -> bytes:
    msg = {"ok": True, "type": type_}
    msg.update(fields)
    return encode(msg)


def outliers_message(t: int, outputs: Mapping[int, FrozenSet[int]],
                     handles: Optional[Sequence[int]] = None) -> bytes:
    """One boundary's outputs, restricted to ``handles`` when given.

    Outlier seqs are sorted so the line is deterministic; JSON object
    keys are strings, so handles are stringified (clients ``int()`` them
    back).
    """
    keep = outputs if handles is None else {
        h: outputs[h] for h in handles if h in outputs
    }
    body: Dict[str, list] = {
        str(h): sorted(seqs) for h, seqs in sorted(keep.items())
    }
    return encode({"type": "outliers", "t": int(t), "outputs": body})
