"""Minimal asyncio HTTP control plane: ``/healthz`` and ``/metrics``.

Deliberately tiny -- no external dependencies, HTTP/1.1 with
``Connection: close``, JSON bodies only.  It exists so load balancers,
``curl``, and the CI smoke job can observe a running server without
speaking the NDJSON ingest protocol.

* ``GET /healthz`` -- liveness: ``{"status": "ok"|"draining", ...}``
  (200 while serving, 503 once draining so rotation pulls the node);
* ``GET /metrics`` -- the full counter snapshot: service counters
  (sessions, admissions, rejections, quarantine reasons), the engine's
  merged ``work_stats`` (additive across shards, monotone over a run,
  prefilter counters included), and the detector config.
"""

from __future__ import annotations

import asyncio
import json
from typing import Callable, Dict

__all__ = ["ControlPlane"]

_MAX_REQUEST_BYTES = 16 * 1024


class ControlPlane:
    """Serves the metrics/health snapshots of an ingestion server.

    ``snapshot_fn`` returns the ``/metrics`` dict; ``health_fn`` returns
    ``(http_status, body_dict)`` for ``/healthz``.  Both are plain
    callables so the control plane never reaches into server internals.
    """

    def __init__(self, snapshot_fn: Callable[[], Dict],
                 health_fn: Callable[[], tuple]):
        self._snapshot_fn = snapshot_fn
        self._health_fn = health_fn
        self._server: asyncio.AbstractServer = None

    async def start(self, host: str, port: int) -> tuple:
        """Bind and serve; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(self._handle, host, port)
        sock = self._server.sockets[0]
        return sock.getsockname()[:2]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------ handling

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=10.0)
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                asyncio.TimeoutError, ConnectionError):
            writer.close()
            return
        try:
            status, body = self._route(request[:_MAX_REQUEST_BYTES])
            payload = json.dumps(body, indent=1, sort_keys=True,
                                 default=str).encode("utf-8") + b"\n"
            reason = {200: "OK", 404: "Not Found", 405: "Method Not "
                      "Allowed", 503: "Service Unavailable"}.get(status, "")
            writer.write(
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n".encode("ascii") + payload)
            await writer.drain()
        except ConnectionError:  # pragma: no cover - client went away
            pass
        finally:
            writer.close()

    def _route(self, request: bytes) -> tuple:
        try:
            method, path = request.split(b"\r\n", 1)[0].split(b" ")[:2]
        except ValueError:
            return 405, {"error": "malformed request line"}
        path = path.split(b"?", 1)[0]
        if method != b"GET":
            return 405, {"error": "only GET is supported"}
        if path == b"/healthz":
            return self._health_fn()
        if path == b"/metrics":
            return 200, self._snapshot_fn()
        return 404, {"error": f"unknown path {path.decode('ascii', 'replace')}",
                     "paths": ["/healthz", "/metrics"]}
