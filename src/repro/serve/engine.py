"""ServiceEngine: the deterministic detector core behind the server.

One engine serves every connected tenant: all registered queries share
one window and one skyband plan (the paper's sharing model), executed by
the sharded :class:`~repro.runtime.Runtime` -- so the serving layer
inherits value partitioning, border replication, the exact cross-shard
merge, prefiltering, and the atomic sharded-checkpoint machinery without
re-implementing any of it.

Determinism is the core contract: the outlier sets the service emits are
**bit-identical to an offline** ``Runtime.run`` **over the merged
stream**, no matter how client sessions interleave.  Three rules make
that true:

* *watermark gating* -- boundary ``t`` is processed only once every
  streaming session has delivered a record positioned at or past ``t``
  (or ended).  Per-session positions are monotone (each session runs an
  :class:`~repro.streams.source.IngestGuard`), so no record positioned
  before ``t`` can arrive later;
* *canonical batch order* -- each boundary's batch is sorted by
  ``(position, seq)`` before stepping, which is exactly the order the
  merged offline stream has;
* *offline end-of-stream* -- when every session has ended, the trailing
  boundaries up to ``stream_end_boundary`` are flushed with empty
  batches, exactly like ``Runtime.run`` drives a finite stream out.

Registration changes route through the same
:class:`~repro.core.dynamic.QueryRegistry` the dynamic detector uses:
the engine rebuilds its runtime at the next boundary, carrying the
retained window over via :meth:`Runtime.preload` and folding the retired
runtime's work counters into a base so the ``/metrics`` counters stay
monotone across rebuilds.
"""

from __future__ import annotations

import logging
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..checkpoint import load_sharded_checkpoint, save_sharded_checkpoint
from ..core.dynamic import QueryRegistry
from ..core.point import Point
from ..core.queries import OutlierQuery
from ..engine.config import DetectorConfig
from ..metrics.results import merge_work
from ..runtime import Runtime
from ..streams.windows import COUNT

__all__ = ["ServiceEngine"]

log = logging.getLogger("repro.serve")

#: one boundary's outputs, keyed by registry handle
HandleOutputs = Dict[int, FrozenSet[int]]


class ServiceEngine:
    """Shared detection state: registry + runtime + pending records.

    Single-threaded by design (the server's drain task is the only
    caller of :meth:`feed`/:meth:`pump`); registration goes through the
    registry's thread-safe boundary and takes effect at the next pumped
    boundary.
    """

    def __init__(self, config: Optional[DetectorConfig] = None,
                 queries: Sequence[OutlierQuery] = (),
                 checkpoint_path=None, checkpoint_interval: int = 0):
        config = config if config is not None else DetectorConfig()
        if config.backend != "serial":
            # the engine steps boundaries one at a time; only the serial
            # backend has live, steppable shard executors
            log.warning("serve forces backend=serial (got %r)",
                        config.backend)
            config = config.replace(backend="serial")
        self.config = config
        self.registry = QueryRegistry()
        self.runtime: Optional[Runtime] = None
        self.checkpoint_path = checkpoint_path
        self.checkpoint_interval = int(checkpoint_interval)
        self.last_boundary = 0
        #: records admitted but not yet assigned to a processed boundary
        self._pending: List[Point] = []
        self._max_pos = float("-inf")
        #: work counters of retired runtimes (kept so snapshots stay
        #: monotone across workload rebuilds)
        self._work_base: Dict[str, int] = {}
        self._boundaries_since_checkpoint = 0
        # monotone service counters
        self.boundaries_processed = 0
        self.records_ingested = 0
        self.records_replay_skipped = 0
        self.checkpoints_written = 0
        for q in queries:
            self.registry.add(q)

    # ------------------------------------------------------------- resume

    @classmethod
    def resume(cls, checkpoint_path, *, checkpoint_interval: int = 0,
               allow_config_mismatch: bool = False) -> "ServiceEngine":
        """Rebuild an engine from the last atomic sharded checkpoint.

        The restored group's queries are re-registered in group order, so
        handles come back as ``0..n-1`` exactly as they were first
        assigned (checkpoints persist query order); resumed clients
        re-attach with ``claim``.  Replayed records positioned at or
        before the checkpoint boundary are skipped on ingest -- they are
        already inside the restored shard windows -- making the resumed
        run bit-exact versus an uninterrupted one (DESIGN.md §11).
        """
        runtime, last_boundary = load_sharded_checkpoint(
            checkpoint_path, backend="serial",
            allow_config_mismatch=allow_config_mismatch,
        )
        engine = cls(config=runtime.config,
                     checkpoint_path=checkpoint_path,
                     checkpoint_interval=checkpoint_interval)
        engine.registry.seed(list(runtime.group.queries))
        engine.registry.mark_fresh()
        engine.runtime = runtime
        engine.last_boundary = int(last_boundary)
        log.info("resumed from %s at boundary %d with %d quer(ies)",
                 checkpoint_path, last_boundary, len(engine.registry))
        return engine

    # ------------------------------------------------------------ workload

    @property
    def kind(self) -> str:
        queries = self.registry.queries()
        for q in queries.values():
            return q.kind
        return COUNT

    @property
    def slide(self) -> Optional[int]:
        """The current swift slide (None while no queries registered)."""
        group = self.registry.group()
        return group.swift.slide if group is not None else None

    def register(self, query: OutlierQuery) -> int:
        """Register a query; effective at the next pumped boundary."""
        return self.registry.add(query)

    def deregister(self, handle: int) -> OutlierQuery:
        """Withdraw a query; effective at the next pumped boundary."""
        return self.registry.remove(handle)

    def query_of(self, handle: int) -> OutlierQuery:
        return self.registry.get(handle)

    # -------------------------------------------------------------- ingest

    def position(self, point: Point) -> float:
        """Stream position of a point under the workload's window kind."""
        return float(point.seq) if self.kind == COUNT else point.time

    def feed(self, point: Point) -> bool:
        """Accept one admitted record into the pending set.

        Returns False (and counts it) when the record is a resume replay:
        positioned at or before the last processed boundary, hence
        already part of the restored window or legitimately expired --
        exactly the records ``batches_by_boundary(start=...)`` skips on
        an offline resume.
        """
        pos = self.position(point)
        if pos < self.last_boundary:
            self.records_replay_skipped += 1
            return False
        self._pending.append(point)
        if pos > self._max_pos:
            self._max_pos = pos
        self.records_ingested += 1
        return True

    # ---------------------------------------------------------- boundaries

    def _ensure_runtime(self) -> Optional[Runtime]:
        """Rebuild the runtime if the registry changed; None if empty."""
        with self.registry.lock:
            if not self.registry.stale:
                return self.runtime
            group = self.registry.group()
            retained: List[Point] = []
            if self.runtime is not None:
                retained = self.runtime.retained_points()
                self._work_base = merge_work(
                    [self._work_base, self.runtime.work_stats_snapshot()])
            if group is None:
                self.runtime = None
                self.registry.mark_fresh()
                return None
            self.runtime = Runtime(group, config=self.config)
            if retained:
                self.runtime.preload(retained)
            self.registry.mark_fresh()
            log.info("runtime rebuilt: %d quer(ies), %d shard(s), "
                     "%d retained point(s)", len(group),
                     self.runtime.n_shards, len(retained))
            return self.runtime

    def _next_boundary(self, slide: int) -> int:
        """First boundary strictly past ``last_boundary`` on this slide."""
        return (self.last_boundary // slide + 1) * slide

    def pump(self, watermark: float) -> List[Tuple[int, HandleOutputs]]:
        """Process every boundary proven complete by ``watermark``.

        ``watermark`` is the server's min-over-sessions delivered
        position: every record positioned strictly before it has been
        fed, and per-session monotonicity guarantees none positioned
        before it will arrive later.  ``float("inf")`` (every session
        ended) flushes to the offline end-of-stream boundary.  Returns
        ``[(t, {handle: outlier seqs}), ...]`` in boundary order.
        """
        with self.registry.lock:
            # runtime and handle order snapshot atomically: a concurrent
            # registration re-flags the registry and lands next pump
            runtime = self._ensure_runtime()
            handles = self.registry.handles()
        if runtime is None:
            return []
        slide = runtime.swift.slide
        until = watermark
        if watermark == float("inf"):
            if self._max_pos == float("-inf") and not self._pending:
                return []
            # the boundary an offline Runtime.run would stop at
            until = (int(self._max_pos) // slide + 1) * slide
        emitted: List[Tuple[int, HandleOutputs]] = []
        t = self._next_boundary(slide)
        while t <= until:
            self._pending.sort(key=lambda p: (self.position(p), p.seq))
            split = 0
            while (split < len(self._pending)
                   and self.position(self._pending[split]) < t):
                split += 1
            batch, self._pending = (self._pending[:split],
                                    self._pending[split:])
            raw = runtime.step(t, batch)
            self.last_boundary = t
            self.boundaries_processed += 1
            emitted.append((t, {handles[qi]: seqs
                                for qi, seqs in raw.items()}))
            self._maybe_checkpoint()
            t += slide
        return emitted

    # ---------------------------------------------------------- checkpoint

    def _maybe_checkpoint(self) -> None:
        if not self.checkpoint_path or self.checkpoint_interval < 1:
            return
        self._boundaries_since_checkpoint += 1
        if self._boundaries_since_checkpoint >= self.checkpoint_interval:
            self.checkpoint()

    def checkpoint(self) -> Optional[int]:
        """Write an atomic sharded checkpoint of the live runtime.

        Returns the boundary persisted, or None when there is nothing to
        save (no runtime yet, no boundary processed, or no path
        configured).  Uses the crash-safe PR-5 writer: per-shard
        segments first, manifest last, every write atomic.
        """
        if (not self.checkpoint_path or self.runtime is None
                or self.last_boundary <= 0):
            return None
        save_sharded_checkpoint(self.runtime, self.last_boundary,
                                self.checkpoint_path)
        self.checkpoints_written += 1
        self._boundaries_since_checkpoint = 0
        log.info("checkpoint written at boundary %d -> %s",
                 self.last_boundary, self.checkpoint_path)
        return self.last_boundary

    # -------------------------------------------------------------- stats

    def work_stats_snapshot(self) -> Dict[str, int]:
        """Merged live work counters, monotone across workload rebuilds.

        The retired runtimes' final counters (folded into a base at each
        rebuild) plus the live runtime's
        :meth:`~repro.runtime.Runtime.work_stats_snapshot` -- including
        the prefilter counters when a screen is configured.
        """
        live: Dict[str, int] = {}
        if self.runtime is not None and not self.registry.stale:
            live = self.runtime.work_stats_snapshot()
        return merge_work([dict(self._work_base), live])

    def stats(self) -> Dict[str, object]:
        """Plain-JSON engine statistics (the ``stat`` op / ``/metrics``)."""
        return {
            "queries": len(self.registry),
            "handles": self.registry.handles(),
            "kind": self.kind,
            "slide": self.slide,
            "shards": self.config.shards,
            "last_boundary": self.last_boundary,
            "boundaries_processed": self.boundaries_processed,
            "records_ingested": self.records_ingested,
            "records_replay_skipped": self.records_replay_skipped,
            "records_pending": len(self._pending),
            "checkpoints_written": self.checkpoints_written,
        }
