"""Empirical complexity: the paper's Sec. 3.1.2 analysis, measured.

The paper bounds one window's processing at ``O(|W| * L * |r|/2)`` with
``L`` the (minimal) number of candidates K-SKY examines and ``|r|`` the
number of layers.  These benchmarks sweep each factor independently:

* window size ``|W|`` (stream and window grow together);
* layer count ``|r|`` (number of distinct r values in the workload);
* ``k_max`` (drives skyband size and resolution depth).

The report test prints the measured scaling ratios so regressions in the
core loops are visible as super-linear jumps.
"""

import pytest

from repro import OutlierQuery, QueryGroup, SOPDetector, WindowSpec
from repro.bench import format_table

from bench_common import run_once, synthetic_stream


def _group_layers(n_layers, k=8, win=1000, slide=100):
    rs = [200.0 + i * (1800.0 / max(n_layers - 1, 1))
          for i in range(n_layers)]
    return QueryGroup([
        OutlierQuery(r=r, k=k, window=WindowSpec(win=win, slide=slide))
        for r in rs
    ])


def _group_k(k_max, win=1000, slide=100):
    ks = sorted({2, max(2, k_max // 2), k_max})
    return QueryGroup([
        OutlierQuery(r=700.0, k=k, window=WindowSpec(win=win, slide=slide))
        for k in ks
    ])


@pytest.mark.figure("scaling")
@pytest.mark.parametrize("win", [500, 1000, 2000])
def test_scaling_window_size(benchmark, win):
    group = QueryGroup([OutlierQuery(
        r=700.0, k=8, window=WindowSpec(win=win, slide=win // 10))])
    res = benchmark.pedantic(run_once, args=(SOPDetector, group,
                                             synthetic_stream()),
                             rounds=1, iterations=1)
    assert res.boundaries > 0


@pytest.mark.figure("scaling")
@pytest.mark.parametrize("n_layers", [1, 8, 64])
def test_scaling_layer_count(benchmark, n_layers):
    res = benchmark.pedantic(run_once, args=(SOPDetector,
                                             _group_layers(n_layers),
                                             synthetic_stream()),
                             rounds=1, iterations=1)
    assert res.boundaries > 0


@pytest.mark.figure("scaling")
@pytest.mark.parametrize("k_max", [4, 16, 64])
def test_scaling_k_max(benchmark, k_max):
    res = benchmark.pedantic(run_once, args=(SOPDetector, _group_k(k_max),
                                             synthetic_stream()),
                             rounds=1, iterations=1)
    assert res.boundaries > 0


@pytest.mark.figure("scaling")
def test_scaling_report(benchmark):
    """Measured per-window CPU along each complexity axis."""

    def sweep():
        rows = {}
        for label, groups in (
            ("win", [(w, QueryGroup([OutlierQuery(
                r=700.0, k=8,
                window=WindowSpec(win=w, slide=w // 10))]))
                for w in (500, 1000, 2000)]),
            ("layers", [(n, _group_layers(n)) for n in (1, 8, 64)]),
            ("k_max", [(k, _group_k(k)) for k in (4, 16, 64)]),
        ):
            series = []
            for x, group in groups:
                det = SOPDetector(group)
                res = det.run(synthetic_stream())
                series.append((x, res.cpu_ms_per_window,
                               det.stats["points_examined"]))
            rows[label] = series
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for label, series in rows.items():
        xs = [x for x, _, _ in series]
        print("\n" + format_table(
            f"SOP scaling in {label}", label, xs,
            ["cpu_ms/window", "points_examined"],
            [[c for _, c, _ in series], [float(e) for _, _, e in series]],
        ))
        # 4x the factor should cost far less than ~quadratic blow-up
        first, last = series[0][1], series[-1][1]
        assert last < 50 * max(first, 0.01), (label, first, last)
