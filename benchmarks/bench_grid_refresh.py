"""Grid/SoA refresh benchmark: the K-SKY refresh engines head to head.

Measures, per boundary and per config, what each refresh optimization
buys using the detector's own :class:`repro.metrics.RefreshProfile`
counters:

* ``batched`` -- the object-path batched engine (the baseline);
* ``grid`` -- object-path batched + grid-cell candidate pruning;
* ``soa`` -- ``skyband_impl="soa"`` under ``refresh_strategy="auto"``:
  the vectorized structure-of-arrays skyband tier driving the batched
  scans, with the measured batched-vs-grid crossover picking the kernel
  strategy per regime (so the r=200 rows where pruning loses stay off
  the grid path);
* ``per-point`` / ``per-point-soa`` oracle runs at the headline configs
  -- the paper's literal one-kernel-per-point Alg. 3 loop on the object
  oracle (the reference every speedup claim is anchored to) and on the
  canonical SoA engine's per-point family, measuring what the per-point
  port itself buys.

Key reported quantities:

* ``refresh_speedup`` -- batched(object) refresh_ns / soa refresh_ns,
  the tentpole measurement (>= 1.0 expected everywhere, including the
  rows where plain grid regressed);
* ``grid_speedup`` -- batched / grid, continuity with the v1 schema;
* ``python_insert_iters_reduction`` -- interpreted skyband-scan
  iterations, object vs soa: the Python insert loop the SoA tier
  exists to kill;
* ``soa_insert_rows`` -- skyband entries committed through bulk array
  appends instead of per-entry ``insert()`` calls;
* ``perpoint_speedup_soa`` -- per-point(object) refresh_ns / soa
  refresh_ns at the oracle configs (the >= 5x acceptance gate);
* ``perpoint_path_speedup`` -- per-point(object) refresh_ns /
  per-point(soa) refresh_ns: the per-point strategy before vs after the
  canonical-SoA port, holding the strategy fixed.

Output equality across every engine pair is asserted on every config --
a speedup that changes answers is a bug, not a result.  Per-config
speedups below 1.0 stay in the JSON next to their counters.

Usage::

    PYTHONPATH=src python benchmarks/bench_grid_refresh.py         # full grid,
                                                                   # writes BENCH_grid.json
    PYTHONPATH=src python benchmarks/bench_grid_refresh.py --quick # CI smoke (small grid,
                                                                   # no file unless --out)
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from dataclasses import replace

import numpy as np

from repro import (
    DetectorConfig,
    SOPDetector,
    compare_outputs,
    make_synthetic_points,
)
from repro.bench import build_workload, default_ranges

N_QUERIES = 8
WINDOWS = (4_000, 8_000, 16_000, 32_000)
RS = (100.0, 200.0)
#: extra large-window points at the headline radius only: the kernel
#: share of refresh time (the part pruning can shrink) grows with the
#: window, so this is where the speedup structurally peaks -- running
#: the full r sweep there would double an already-long benchmark for
#: configs that tell the same story as 32k
XL_WINDOWS = (64_000,)
XL_RS = (100.0,)
QUICK_WINDOWS = (2_000,)
QUICK_RS = (200.0,)
WORKLOAD = "B"
#: slide/window ratio 1/20, like the paper's defaults
SLIDE_DIV = 20
#: stream length in windows: one warm-up window + one steady-state window
WINDOWS_PER_STREAM = 2
#: configs that additionally run the per-point oracles (once each -- the
#: object oracle is the slow path by design); the soa-vs-per-point
#: speedup is the headline gate, and the object-vs-soa per-point pair
#: measures the canonical-SoA port of the per-point family itself
PERPOINT_CONFIGS = ((16_000, 100.0), (16_000, 200.0))
#: headline gates, checked in full mode (warnings, not failures: honest
#: regressions belong in the JSON)
HEADLINE_SPEEDUP = 1.5
HEADLINE_MIN_WINDOW = 16_000
PERPOINT_SPEEDUP_TARGET = 5.0
#: the per-point strategy itself, object oracle vs canonical SoA family
PERPOINT_PATH_TARGET = 1.0
ITERS_REDUCTION_TARGET = 10.0
#: timing runs per engine in full mode (alternating order, per-boundary
#: minimum of refresh_ns across repeats): detector outputs and work
#: counters are deterministic, wall time is not, and ambient load bursts
#: can last minutes -- longer than one run -- so the minimum is taken per
#: boundary, not per run
REPEATS = 3

#: benchmarked engines: label -> DetectorConfig kwargs.  The object
#: baselines pin ``skyband_impl`` explicitly: "soa" is the package
#: default now, and the before/after comparison is meaningless if the
#: "before" silently runs the "after" tier.
ENGINES = {
    "batched": {"refresh_strategy": "batched", "skyband_impl": "object"},
    "grid": {"refresh_strategy": "grid", "skyband_impl": "object"},
    "soa": {"refresh_strategy": "auto", "skyband_impl": "soa"},
}

#: the per-point oracle pair (run only at PERPOINT_CONFIGS)
PERPOINT_ENGINES = {
    "per-point": {"refresh_strategy": "per-point",
                  "skyband_impl": "object"},
    "per-point-soa": {"refresh_strategy": "per-point",
                      "skyband_impl": "soa"},
}


def _ranges(window: int, r: float):
    """Workload-B ranges pinned to one swift window and one radius."""
    slide = max(50, window // SLIDE_DIV)
    return replace(
        default_ranges(),
        fixed_r=r,
        fixed_win=window,
        fixed_slide=slide,
    )


def _stream(window: int):
    """Clustered stream: dense value regions a 100-200 radius resolves."""
    return make_synthetic_points(
        WINDOWS_PER_STREAM * window, dim=2, outlier_rate=0.02, seed=7,
        n_clusters=4, cluster_spread=120,
    )


def _profile_dict(det: SOPDetector, robust_ns: float | None = None) -> dict:
    """Profile counters for the report.  ``robust_ns`` replaces the raw
    single-run refresh time with the noise-robust estimate (per-boundary
    minimum across repeats) when repeats were taken."""
    prof = det.profile
    refresh_ns = int(robust_ns) if robust_ns is not None else prof.refresh_ns
    return {
        "boundaries": prof.boundaries,
        "refresh_ns": refresh_ns,
        "mean_refresh_ms": round(refresh_ns / max(1, prof.boundaries) / 1e6, 4),
        "kernel_launches": prof.kernel_launches,
        "batch_rows": prof.batch_rows,
        "python_insert_iters": prof.python_insert_iters,
        "soa_insert_rows": prof.soa_insert_rows,
        "candidates_pruned": prof.candidates_pruned,
        "kernel_cells_visited": prof.kernel_cells_visited,
        "distance_rows": det.buffer.distance_rows,
        "ksky_runs": det.stats["ksky_runs"],
        "batched_scans": det.stats["batched_scans"],
    }


def _check_equal(label: str, det, res, det_ref, res_ref, diffs) -> None:
    """Engine-independence oracle: answers, memory accounting, and the
    logical work counters must match the baseline; only kernel volume and
    interpreter-iteration counters may differ."""
    for d in compare_outputs(res_ref.outputs, res.outputs):
        diffs.append(f"{label}: {d}")
    if res.memory.peak_units != res_ref.memory.peak_units:
        diffs.append(
            f"{label}: peak memory units {res.memory.peak_units} "
            f"vs batched {res_ref.memory.peak_units}"
        )
    for key in ("ksky_runs", "points_examined", "fully_safe_marked",
                "early_terminations"):
        if det.stats[key] != det_ref.stats[key]:
            diffs.append(f"{label}: stats[{key}] {det.stats[key]} "
                         f"vs batched {det_ref.stats[key]}")


def run_config(window: int, r: float, seed: int = 11,
               repeats: int = REPEATS, with_perpoint: bool = False) -> dict:
    group = build_workload(WORKLOAD, n_queries=N_QUERIES, seed=seed,
                           ranges=_ranges(window, r))
    stream = _stream(window)
    # alternating engine order so every engine sees early and late slots;
    # per engine the timing estimate is the per-boundary MINIMUM of
    # refresh_ns across repeats (outputs and work counters are
    # deterministic across repeats -- only wall time varies, and ambient
    # load bursts can span a whole run, so a min over whole runs is not
    # robust while a min per boundary is)
    labels = list(ENGINES)
    order = []
    for rep in range(max(1, repeats)):
        order.extend(labels if rep % 2 == 0 else reversed(labels))
    runs = {}
    boundary_ns: dict = {}
    for label in order:
        det = SOPDetector(group, config=DetectorConfig(**ENGINES[label]))
        res = det.run(stream)
        runs[label] = (det, res)
        sample_ns = np.array([s[0] for s in det.profile.samples],
                             dtype=np.int64)
        prev = boundary_ns.get(label)
        boundary_ns[label] = (sample_ns if prev is None
                              else np.minimum(prev, sample_ns))
    if with_perpoint:
        for label, kwargs in PERPOINT_ENGINES.items():
            det = SOPDetector(group, config=DetectorConfig(**kwargs))
            runs[label] = (det, det.run(stream))
            boundary_ns[label] = np.array(
                [s[0] for s in det.profile.samples], dtype=np.int64)
    robust_ns = {label: float(arr.sum()) for label, arr in
                 boundary_ns.items()}
    det_b, res_b = runs["batched"]
    diffs: list = []
    for label, (det, res) in runs.items():
        if label != "batched":
            _check_equal(label, det, res, det_b, res_b, diffs)
    equal = not diffs

    def _ns(label):
        return robust_ns[label]

    soa_ns = _ns("soa")
    grid_ns = _ns("grid")
    iters_b = det_b.profile.python_insert_iters
    iters_s = runs["soa"][0].profile.python_insert_iters
    out = {
        "workload": WORKLOAD,
        "window": window,
        "r": r,
        "slide": group.swift.slide,
        "swift_window": group.swift.win,
        "n_queries": N_QUERIES,
        "stream_points": len(stream),
        "batched": _profile_dict(det_b, robust_ns["batched"]),
        "grid": _profile_dict(runs["grid"][0], robust_ns["grid"]),
        "soa": _profile_dict(runs["soa"][0], robust_ns["soa"]),
        "refresh_speedup": round(_ns("batched") / soa_ns, 3)
        if soa_ns else float("nan"),
        "grid_speedup": round(_ns("batched") / grid_ns, 3)
        if grid_ns else float("nan"),
        "python_insert_iters_reduction": round(iters_b / iters_s, 1)
        if iters_s else float("inf"),
        "outputs_equal": equal,
        "equality_diffs": diffs[:5],
    }
    if with_perpoint:
        pp_ns = _ns("per-point")
        pps_ns = _ns("per-point-soa")
        out["per_point"] = _profile_dict(runs["per-point"][0], pp_ns)
        out["per_point_soa"] = _profile_dict(runs["per-point-soa"][0],
                                             pps_ns)
        out["perpoint_speedup_soa"] = (round(pp_ns / soa_ns, 3)
                                       if soa_ns else float("nan"))
        out["perpoint_path_speedup"] = (round(pp_ns / pps_ns, 3)
                                        if pps_ns else float("nan"))
    return out


def run_grid(windows, rs, extra_pairs=(), repeats: int = REPEATS,
             perpoint_configs=()) -> dict:
    pairs = [(window, r) for r in rs for window in windows]
    pairs.extend(extra_pairs)
    configs = []
    for window, r in pairs:
        cfg = run_config(window, r, repeats=repeats,
                         with_perpoint=(window, r) in set(perpoint_configs))
        configs.append(cfg)
        pp = (f" perpoint->soa {cfg['perpoint_speedup_soa']:.2f}x "
              f"(perpoint path {cfg['perpoint_path_speedup']:.2f}x)"
              if "perpoint_speedup_soa" in cfg else "")
        print(
            f"workload B r={cfg['r']:>5.0f} win={cfg['window']:>6}: "
            f"batched {cfg['batched']['mean_refresh_ms']:8.2f} ms/b "
            f"-> soa {cfg['soa']['mean_refresh_ms']:8.2f} ms/b "
            f"speedup {cfg['refresh_speedup']:.2f}x "
            f"(grid {cfg['grid_speedup']:.2f}x, "
            f"iters /{cfg['python_insert_iters_reduction']}){pp} "
            f"outputs_equal={cfg['outputs_equal']}"
        )
        if not cfg["outputs_equal"]:
            details = "\n  ".join(cfg["equality_diffs"])
            raise SystemExit(
                f"FATAL: refresh engines diverge on "
                f"r={r} window {window}:\n  {details}"
            )
    headline = max(
        (c["refresh_speedup"] for c in configs
         if c["window"] >= HEADLINE_MIN_WINDOW),
        default=None,
    )
    perpoint = max(
        (c["perpoint_speedup_soa"] for c in configs
         if "perpoint_speedup_soa" in c),
        default=None,
    )
    perpoint_path = min(
        (c["perpoint_path_speedup"] for c in configs
         if "perpoint_path_speedup" in c),
        default=None,
    )
    min_iters_reduction = min(
        (c["python_insert_iters_reduction"] for c in configs),
        default=None,
    )
    regressions = [
        {"window": c["window"], "r": c["r"],
         "refresh_speedup": c["refresh_speedup"]}
        for c in configs if c["refresh_speedup"] < 1.0
    ]
    regressions.extend(
        {"window": c["window"], "r": c["r"],
         "perpoint_path_speedup": c["perpoint_path_speedup"]}
        for c in configs if c.get("perpoint_path_speedup", 1.0) < 1.0
    )
    return {
        "schema": "bench_grid_refresh/v3",
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "settings": {
            "workload": WORKLOAD,
            "n_queries": N_QUERIES,
            "windows_per_stream": WINDOWS_PER_STREAM,
            "slide_divisor": SLIDE_DIV,
            "timing_runs_per_engine": repeats,
            "engines": {k: dict(v) for k, v in ENGINES.items()},
            "perpoint_engines": {k: dict(v)
                                 for k, v in PERPOINT_ENGINES.items()},
            "stream": "make_synthetic_points(dim=2, outlier_rate=0.02, "
                      "seed=7, n_clusters=4, cluster_spread=120)",
        },
        "headline_speedup_at_large_windows": headline,
        "headline_speedup_vs_perpoint": perpoint,
        "min_perpoint_path_speedup": perpoint_path,
        "min_python_insert_iters_reduction": min_iters_reduction,
        "regressions": regressions,
        "configs": configs,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small grid, no JSON unless --out is given "
                             "(CI smoke test)")
    parser.add_argument("--out", default=None,
                        help="JSON output path (default BENCH_grid.json; "
                             "suppressed in --quick mode)")
    args = parser.parse_args(argv)
    if args.quick:
        report = run_grid(QUICK_WINDOWS, QUICK_RS, repeats=1)
    else:
        xl_pairs = [(w, r) for r in XL_RS for w in XL_WINDOWS]
        report = run_grid(WINDOWS, RS, extra_pairs=xl_pairs,
                          perpoint_configs=PERPOINT_CONFIGS)
        gates = (
            ("best large-window batched->soa speedup",
             report["headline_speedup_at_large_windows"], HEADLINE_SPEEDUP),
            ("per-point->soa speedup",
             report["headline_speedup_vs_perpoint"],
             PERPOINT_SPEEDUP_TARGET),
            ("per-point path object->soa speedup",
             report["min_perpoint_path_speedup"],
             PERPOINT_PATH_TARGET),
            ("min python_insert_iters reduction",
             report["min_python_insert_iters_reduction"],
             ITERS_REDUCTION_TARGET),
        )
        for what, got, want in gates:
            if got is not None and got < want:
                print(f"WARNING: {what} {got:.2f}x is below the {want}x "
                      f"target", file=sys.stderr)
    out = args.out if args.out is not None else (
        None if args.quick else "BENCH_grid.json")
    if out:
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
