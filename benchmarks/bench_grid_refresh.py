"""Grid-pruned refresh benchmark: GridPrunedRefresh vs BatchedRefresh.

Measures what grid-cell candidate pruning buys on top of the batched
K-SKY engine, per boundary, using the detector's own
:class:`repro.metrics.RefreshProfile` counters:

* ``mean_refresh_ms`` -- wall time inside the refresh stage;
* ``distance_rows`` -- point-to-point distances actually computed (the
  quantity pruning exists to shrink from O(rows x window) to
  O(rows x neighborhood));
* ``candidates_pruned`` / ``kernel_cells_visited`` -- how many candidate
  columns stayed out of the kernels, and what the neighborhood assembly
  cost in cell probes.

Grid: workload B (fixed r, varying k -- the regime where scans terminate
late and the window-sized kernels hurt most) at r in {100, 200} x swift
windows {4k .. 32k}, plus a 64k point at the headline radius (the kernel
share of refresh time grows with the window, so large windows are where
pruning structurally pays), over a clustered stream.  Output equality between
the two engines is asserted on every config -- a speedup that changes
answers is a bug, not a result.  Small-window / uniform regimes where
pruning overhead loses are expected and reported honestly: per-config
speedups below 1.0 stay in the JSON next to their pruning counters.

Usage::

    PYTHONPATH=src python benchmarks/bench_grid_refresh.py         # full grid,
                                                                   # writes BENCH_grid.json
    PYTHONPATH=src python benchmarks/bench_grid_refresh.py --quick # CI smoke (small grid,
                                                                   # no file unless --out)
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from dataclasses import replace

import numpy as np

from repro import (
    DetectorConfig,
    SOPDetector,
    compare_outputs,
    make_synthetic_points,
)
from repro.bench import build_workload, default_ranges

N_QUERIES = 8
WINDOWS = (4_000, 8_000, 16_000, 32_000)
RS = (100.0, 200.0)
#: extra large-window points at the headline radius only: the kernel
#: share of refresh time (the part pruning can shrink) grows with the
#: window, so this is where the speedup structurally peaks -- running
#: the full r sweep there would double an already-long benchmark for
#: configs that tell the same story as 32k
XL_WINDOWS = (64_000,)
XL_RS = (100.0,)
QUICK_WINDOWS = (2_000,)
QUICK_RS = (200.0,)
WORKLOAD = "B"
#: slide/window ratio 1/20, like the paper's defaults
SLIDE_DIV = 20
#: stream length in windows: one warm-up window + one steady-state window
WINDOWS_PER_STREAM = 2
#: headline gate: grid must beat batched by this factor on some config
#: with window >= HEADLINE_MIN_WINDOW (checked in full mode)
HEADLINE_SPEEDUP = 1.5
HEADLINE_MIN_WINDOW = 16_000
#: timing runs per engine in full mode (alternating order, min taken):
#: detector outputs and work counters are deterministic, wall time is
#: not -- min-of-2 suppresses load spikes from sharing the machine
REPEATS = 2


def _ranges(window: int, r: float):
    """Workload-B ranges pinned to one swift window and one radius."""
    slide = max(50, window // SLIDE_DIV)
    return replace(
        default_ranges(),
        fixed_r=r,
        fixed_win=window,
        fixed_slide=slide,
    )


def _stream(window: int):
    """Clustered stream: dense value regions a 100-200 radius resolves."""
    return make_synthetic_points(
        WINDOWS_PER_STREAM * window, dim=2, outlier_rate=0.02, seed=7,
        n_clusters=4, cluster_spread=120,
    )


def _profile_dict(det: SOPDetector) -> dict:
    prof = det.profile
    return {
        "boundaries": prof.boundaries,
        "refresh_ns": prof.refresh_ns,
        "mean_refresh_ms": round(prof.mean_refresh_ms, 4),
        "kernel_launches": prof.kernel_launches,
        "batch_rows": prof.batch_rows,
        "python_insert_iters": prof.python_insert_iters,
        "candidates_pruned": prof.candidates_pruned,
        "kernel_cells_visited": prof.kernel_cells_visited,
        "distance_rows": det.buffer.distance_rows,
        "ksky_runs": det.stats["ksky_runs"],
        "batched_scans": det.stats["batched_scans"],
    }


def run_config(window: int, r: float, seed: int = 11,
               repeats: int = REPEATS) -> dict:
    group = build_workload(WORKLOAD, n_queries=N_QUERIES, seed=seed,
                           ranges=_ranges(window, r))
    stream = _stream(window)
    # alternating engine order so both see one early and one late slot;
    # per engine the fastest run is kept (outputs and work counters are
    # deterministic across repeats -- only wall time varies)
    order = ("grid", "batched", "batched", "grid")[: 2 * max(1, repeats)]
    runs = {}
    for label in order:
        det = SOPDetector(group, config=DetectorConfig(
            refresh_strategy=label))
        res = det.run(stream)
        best = runs.get(label)
        if best is None or det.profile.refresh_ns < best[0].profile.refresh_ns:
            runs[label] = (det, res)
    det_g, res_g = runs["grid"]
    det_b, res_b = runs["batched"]
    # the pruning oracle: answers, memory accounting, and the logical work
    # counters must be identical; only kernel volume may differ
    diffs = compare_outputs(res_b.outputs, res_g.outputs)
    if res_g.memory.peak_units != res_b.memory.peak_units:
        diffs.append(
            f"peak memory units: batched {res_b.memory.peak_units} "
            f"vs grid {res_g.memory.peak_units}"
        )
    for key in ("ksky_runs", "points_examined", "fully_safe_marked",
                "early_terminations"):
        if det_g.stats[key] != det_b.stats[key]:
            diffs.append(f"stats[{key}]: batched {det_b.stats[key]} "
                         f"vs grid {det_g.stats[key]}")
    equal = not diffs
    speedup = (det_b.profile.refresh_ns / det_g.profile.refresh_ns
               if det_g.profile.refresh_ns else float("nan"))
    rows_g = det_g.buffer.distance_rows
    rows_b = det_b.buffer.distance_rows
    return {
        "workload": WORKLOAD,
        "window": window,
        "r": r,
        "slide": group.swift.slide,
        "swift_window": group.swift.win,
        "n_queries": N_QUERIES,
        "stream_points": len(stream),
        "grid": _profile_dict(det_g),
        "batched": _profile_dict(det_b),
        "refresh_speedup": round(speedup, 3),
        "distance_rows_ratio": round(rows_b / rows_g, 3) if rows_g else None,
        "outputs_equal": equal,
        "equality_diffs": diffs[:5],
    }


def run_grid(windows, rs, extra_pairs=(), repeats: int = REPEATS) -> dict:
    pairs = [(window, r) for r in rs for window in windows]
    pairs.extend(extra_pairs)
    configs = []
    for window, r in pairs:
        cfg = run_config(window, r, repeats=repeats)
        configs.append(cfg)
        print(
            f"workload B r={cfg['r']:>5.0f} win={cfg['window']:>6}: "
            f"batched {cfg['batched']['mean_refresh_ms']:8.2f} ms/b "
            f"-> grid {cfg['grid']['mean_refresh_ms']:8.2f} ms/b "
            f"speedup {cfg['refresh_speedup']:.2f}x "
            f"(rows /{cfg['distance_rows_ratio']}, "
            f"pruned {cfg['grid']['candidates_pruned']}, "
            f"cells {cfg['grid']['kernel_cells_visited']}) "
            f"outputs_equal={cfg['outputs_equal']}"
        )
        if not cfg["outputs_equal"]:
            details = "\n  ".join(cfg["equality_diffs"])
            raise SystemExit(
                f"FATAL: grid and batched runs diverge on "
                f"r={r} window {window}:\n  {details}"
            )
    headline = max(
        (c["refresh_speedup"] for c in configs
         if c["window"] >= HEADLINE_MIN_WINDOW),
        default=None,
    )
    regressions = [
        {"window": c["window"], "r": c["r"],
         "refresh_speedup": c["refresh_speedup"]}
        for c in configs if c["refresh_speedup"] < 1.0
    ]
    return {
        "schema": "bench_grid_refresh/v1",
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "settings": {
            "workload": WORKLOAD,
            "n_queries": N_QUERIES,
            "windows_per_stream": WINDOWS_PER_STREAM,
            "slide_divisor": SLIDE_DIV,
            "timing_runs_per_engine": repeats,
            "stream": "make_synthetic_points(dim=2, outlier_rate=0.02, "
                      "seed=7, n_clusters=4, cluster_spread=120)",
        },
        "headline_speedup_at_large_windows": headline,
        "regressions": regressions,
        "configs": configs,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small grid, no JSON unless --out is given "
                             "(CI smoke test)")
    parser.add_argument("--out", default=None,
                        help="JSON output path (default BENCH_grid.json; "
                             "suppressed in --quick mode)")
    args = parser.parse_args(argv)
    if args.quick:
        report = run_grid(QUICK_WINDOWS, QUICK_RS, repeats=1)
    else:
        xl_pairs = [(w, r) for r in XL_RS for w in XL_WINDOWS]
        report = run_grid(WINDOWS, RS, extra_pairs=xl_pairs)
        headline = report["headline_speedup_at_large_windows"]
        if headline is not None and headline < HEADLINE_SPEEDUP:
            print(
                f"WARNING: best large-window speedup {headline:.2f}x is "
                f"below the {HEADLINE_SPEEDUP}x target", file=sys.stderr,
            )
    out = args.out if args.out is not None else (
        None if args.quick else "BENCH_grid.json")
    if out:
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
