"""Fig. 9: arbitrary k and r (workload C) on the synthetic stream.

Paper setup: win=10K, slide=0.5K; k in [30, 1500), r in [200, 2000).
Paper result: SOP beats MCOD/LEAP up to 3 orders of magnitude -- K-SKY
shares computation both *within* a k-subgroup and *across* subgroups via
the integrated LSky, while MCOD must simulate the most restrictive
(largest k, smallest r) query.
"""

import pytest

from repro import LEAPDetector, MCODDetector, SOPDetector
from repro.bench import build_workload

from bench_common import (
    PATTERN_RANGES,
    figure_series,
    print_series,
    run_once,
    synthetic_stream,
)

SIZES = [10, 50, 100]


def _group(n):
    return build_workload("C", n, seed=900 + n, ranges=PATTERN_RANGES)


@pytest.mark.figure("fig9")
@pytest.mark.parametrize("n", SIZES)
def test_fig09_cpu_sop(benchmark, n):
    res = benchmark.pedantic(run_once, args=(SOPDetector, _group(n),
                                             synthetic_stream()),
                             rounds=1, iterations=1)
    assert res.boundaries > 0


@pytest.mark.figure("fig9")
@pytest.mark.parametrize("n", SIZES)
def test_fig09_cpu_mcod(benchmark, n):
    res = benchmark.pedantic(run_once, args=(MCODDetector, _group(n),
                                             synthetic_stream()),
                             rounds=1, iterations=1)
    assert res.boundaries > 0


@pytest.mark.figure("fig9")
@pytest.mark.parametrize("n", [10, 50])
def test_fig09_cpu_leap(benchmark, n):
    res = benchmark.pedantic(run_once, args=(LEAPDetector, _group(n),
                                             synthetic_stream()),
                             rounds=1, iterations=1)
    assert res.boundaries > 0


@pytest.mark.figure("fig9")
def test_fig09_series_report(benchmark):
    series = benchmark.pedantic(
        figure_series,
        args=("Fig 9 (workload C: arbitrary k and r, synthetic)", "C",
              SIZES, synthetic_stream(), PATTERN_RANGES),
        kwargs={"leap_cap": 50, "seed_base": 900},
        rounds=1, iterations=1,
    )
    print_series(series)
    assert series.cpu_ms("sop")[-1] < series.cpu_ms("mcod")[-1]
    assert series.memory_units("sop")[-1] < series.memory_units("mcod")[-1]
    # LEAP grows linearly in |Q| while SOP flattens: the *ratio* between
    # the 10- and 50-query points separates them robustly even when the
    # absolute margin is noisy at this scale (see EXPERIMENTS.md, Fig. 9)
    sop_growth = series.cpu_ms("sop")[1] / series.cpu_ms("sop")[0]
    leap_growth = series.cpu_ms("leap")[1] / series.cpu_ms("leap")[0]
    assert leap_growth > sop_growth
    sp = series.speedup_over("sop", "leap")
    assert sp[1] and sp[1] > 1.0
