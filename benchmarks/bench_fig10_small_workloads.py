"""Fig. 10: small workloads (1, 2, 4, 8 queries).

Fig. 10(a): all queries use the same attribute set.  The paper's claims:
SOP performs well even with a single query ("SOP does not perform worse
than the state-of-the-art single query approach LEAP") -- i.e. the
sharing machinery adds no meaningful overhead.

Fig. 10(b): queries split into 3 groups, each over a different attribute
set, handled by the divide-and-conquer extension; the paper reports SOP
at least 150x faster than MCOD and 2x faster than LEAP there (our scaled
substrate reproduces the ordering, not the exact constants).
"""

import pytest

from repro import (
    LEAPDetector,
    MCODDetector,
    MultiAttributeDetector,
    SOPDetector,
)
from repro.bench import build_workload, format_table

from bench_common import (
    PATTERN_RANGES,
    figure_series,
    print_series,
    run_once,
    synthetic_stream,
)

SIZES = [1, 2, 4, 8]


def _group(n):
    return build_workload("C", n, seed=1000 + n, ranges=PATTERN_RANGES)


@pytest.mark.figure("fig10a")
@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("cls", [SOPDetector, MCODDetector, LEAPDetector],
                         ids=["sop", "mcod", "leap"])
def test_fig10a_small_workload(benchmark, cls, n):
    res = benchmark.pedantic(run_once, args=(cls, _group(n),
                                             synthetic_stream()),
                             rounds=1, iterations=1)
    assert res.boundaries > 0


@pytest.mark.figure("fig10a")
def test_fig10a_series_report(benchmark):
    series = benchmark.pedantic(
        figure_series,
        args=("Fig 10(a) (small workloads, same attributes)", "C", SIZES,
              synthetic_stream(), PATTERN_RANGES),
        kwargs={"seed_base": 1000},
        rounds=1, iterations=1,
    )
    print_series(series)
    # single-query case: SOP within a small factor of LEAP (no large
    # multi-query overhead); paper: "no much extra overhead"
    sop1, leap1 = series.cpu_ms("sop")[0], series.cpu_ms("leap")[0]
    assert sop1 < 5 * leap1


def _attribute_groups(per_group):
    """Fig. 10(b): 3 groups over distinct attribute pairs of a 3-D stream."""
    attr_sets = [(0, 1), (1, 2), (0, 2)]
    queries = []
    for g_idx, attrs in enumerate(attr_sets):
        base = build_workload("C", per_group, seed=1100 + g_idx,
                              ranges=PATTERN_RANGES)
        queries.extend(q.replace(attributes=attrs) for q in base)
    return queries


@pytest.mark.figure("fig10b")
@pytest.mark.parametrize("per_group", [1, 2, 4])
def test_fig10b_multiattr_sop(benchmark, per_group):
    from repro import make_synthetic_points
    pts = make_synthetic_points(2000, dim=3, outlier_rate=0.03, seed=7)
    queries = _attribute_groups(per_group)
    res = benchmark.pedantic(
        lambda: MultiAttributeDetector(queries, factory=SOPDetector).run(pts),
        rounds=1, iterations=1)
    assert res.boundaries > 0


@pytest.mark.figure("fig10b")
def test_fig10b_series_report(benchmark):
    """3 attribute groups x {1, 2, 4} queries each, all algorithms."""
    from repro import make_synthetic_points
    pts = make_synthetic_points(2000, dim=3, outlier_rate=0.03, seed=7)

    def sweep():
        rows = {"sop": [], "mcod": [], "leap": []}
        factories = {"sop": SOPDetector, "mcod": MCODDetector,
                     "leap": LEAPDetector}
        for per_group in (1, 2, 4):
            queries = _attribute_groups(per_group)
            for name, factory in factories.items():
                res = MultiAttributeDetector(queries, factory=factory
                                             ).run(pts)
                rows[name].append(res.cpu_ms_per_window)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n" + format_table(
        "Fig 10(b) (3 attribute groups) -- CPU time per window (ms)",
        "queries/group", [1, 2, 4], list(rows), list(rows.values())) + "\n")
    # At 1-4 queries per group the sharing machinery cannot amortize, so
    # unlike the paper's Java testbed our SOP carries a bounded overhead
    # here (see EXPERIMENTS.md); the robust claims at this scale are that
    # the overhead stays within a small factor of the single-query-optimal
    # LEAP and that SOP's growth in queries/group is the flattest.
    assert rows["sop"][-1] <= 5 * max(rows["mcod"][-1], rows["leap"][-1])
    sop_growth = rows["sop"][-1] / rows["sop"][0]
    leap_growth = rows["leap"][-1] / rows["leap"][0]
    assert sop_growth < leap_growth
