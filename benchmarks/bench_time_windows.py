"""Count-based vs time-based windows (paper Sec. 6.1's closing remark).

"All experiments are reported using the count-based window, with
time-based window processing achieving similar results."  This module
verifies that statement on our substrate: the same pattern parameters run
over the stock stream once with count-based windows and once with
time-based windows of equivalent coverage (the simulated trading day has
a known average arrival rate, so a w-trade window corresponds to
``w / rate`` seconds).
"""

import pytest

from repro import (
    OutlierQuery,
    QueryGroup,
    SOPDetector,
    MCODDetector,
    WindowSpec,
)
from repro.bench import format_table

from bench_common import stock_stream, run_once

_DAY_SECONDS = 6.5 * 3600


def _groups(n_queries=20, seed=77):
    """Matched count/time workloads over the stock trace."""
    import numpy as np
    rng = np.random.default_rng(seed)
    pts = stock_stream()
    rate = len(pts) / _DAY_SECONDS  # trades per second
    count_queries, time_queries = [], []
    for _ in range(n_queries):
        r = float(rng.uniform(3, 20))
        k = int(rng.integers(3, 12))
        win = int(rng.integers(6, 20)) * 100
        slide = 100
        count_queries.append(OutlierQuery(
            r=r, k=k, window=WindowSpec(win=win, slide=slide)))
        # equivalent seconds, rounded to the slide quantum
        win_s = max(100, int(round(win / rate / 100)) * 100)
        slide_s = max(100, int(round(slide / rate / 100)) * 100)
        time_queries.append(OutlierQuery(
            r=r, k=k, window=WindowSpec(win=win_s, slide=min(slide_s, win_s),
                                        kind="time")))
    return QueryGroup(count_queries), QueryGroup(time_queries)


@pytest.mark.figure("timewin")
@pytest.mark.parametrize("kind", ["count", "time"])
@pytest.mark.parametrize("cls", [SOPDetector, MCODDetector],
                         ids=["sop", "mcod"])
def test_time_vs_count_cells(benchmark, cls, kind):
    count_group, time_group = _groups()
    group = count_group if kind == "count" else time_group
    res = benchmark.pedantic(run_once, args=(cls, group, stock_stream()),
                             rounds=1, iterations=1)
    assert res.boundaries > 0


@pytest.mark.figure("timewin")
def test_time_vs_count_report(benchmark):
    def sweep():
        count_group, time_group = _groups()
        rows = {}
        for cls, name in ((SOPDetector, "sop"), (MCODDetector, "mcod")):
            c = cls(count_group).run(stock_stream())
            t = cls(time_group).run(stock_stream())
            rows[name] = (c.cpu_ms_per_window, t.cpu_ms_per_window,
                          float(c.total_outliers()),
                          float(t.total_outliers()))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    names = list(rows)
    print("\n" + format_table(
        "count-based vs time-based windows (stock, 20 queries)",
        "algo", names,
        ["count_ms/w", "time_ms/w", "count_reports", "time_reports"],
        [[rows[n][i] for n in names] for i in range(4)],
    ) + "\n")
    for name, (c_ms, t_ms, c_rep, t_rep) in rows.items():
        # "similar results": same order of magnitude in both cost and yield
        assert 0.1 < (t_ms / c_ms) < 10, name
        assert c_rep > 0 and t_rep > 0
