"""Operation counts: the substrate-independent view of Figs. 7-13.

Pure-Python wall time under-reports SOP's algorithmic advantage (the
interpreter taxes SOP's pointer-heavy skyband maintenance far more than
the baselines' bulk numpy scans).  The **distance_rows** counter -- one
unit per point-to-point distance evaluated -- measures what the paper's
complexity arguments are actually about, independent of the host.  On
these counts the paper's orders-of-magnitude separation is visible
directly.
"""

import pytest

from repro import LEAPDetector, MCODDetector, NaiveDetector, SOPDetector
from repro.bench import build_workload, format_table

from bench_common import PATTERN_RANGES, synthetic_stream

ALGOS = {
    "sop": SOPDetector,
    "mcod": MCODDetector,
    "leap": LEAPDetector,
    "naive": NaiveDetector,
}
SIZES = [10, 50]
CAPS = {"naive": 10, "leap": 50}


def _group(n):
    return build_workload("C", n, seed=2200 + n, ranges=PATTERN_RANGES)


@pytest.mark.figure("opcounts")
@pytest.mark.parametrize("algo", list(ALGOS), ids=list(ALGOS))
def test_opcount_run(benchmark, algo):
    n = min(SIZES[-1], CAPS.get(algo, SIZES[-1]))
    det = ALGOS[algo](_group(n))

    def run():
        return det.run(synthetic_stream())

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    assert res.work_stats_snapshot()["distance_rows"] > 0


@pytest.mark.figure("opcounts")
def test_opcount_report(benchmark):
    def sweep():
        rows = {name: [] for name in ALGOS}
        for n in SIZES:
            group = _group(n)
            for name, cls in ALGOS.items():
                if n > CAPS.get(name, n):
                    rows[name].append(None)
                    continue
                res = cls(group).run(synthetic_stream())
                rows[name].append(
                    float(res.work_stats_snapshot()["distance_rows"]))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n" + format_table(
        "Distance evaluations per run (workload C, synthetic)",
        "queries", SIZES, list(rows), list(rows.values())) + "\n")
    sop = rows["sop"]
    # MCOD's distance count is flat by construction (one full range scan
    # per arrival, shared across queries) -- its multi-query cost lives in
    # the all-neighbor evidence it maintains (see the memory tables).  SOP
    # stays within a small factor of that floor on distances...
    assert sop[-1] < 3 * rows["mcod"][-1]
    # ...while LEAP's per-query probing grows linearly in the workload...
    assert sop[-1] * 2 < rows["leap"][-1]
    # ...and naive's per-query quadratic rescans dwarf everything.
    assert sop[0] * 10 < rows["naive"][0]
