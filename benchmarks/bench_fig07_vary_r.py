"""Fig. 7: arbitrary r (workload A) on the synthetic stream.

Paper setup: win=10K, slide=0.5K, k=30 fixed; r uniform in [200, 2000);
workload sizes {10, 100, 500, 1000}.  Paper result: SOP beats MCOD and
LEAP by up to 3 orders of magnitude in CPU (Fig. 7a) and stores a small
fraction of their memory (Fig. 7b).

Scaled setup: see ``bench_common`` (win=1000, slide=100, k=5); sizes
{10, 50, 100} with LEAP capped at 50 (its per-query execution already
dominates the suite's runtime there, which is itself the paper's point).
"""

import pytest

from repro import LEAPDetector, MCODDetector, SOPDetector
from repro.bench import build_workload

from bench_common import (
    PATTERN_RANGES,
    figure_series,
    print_series,
    run_once,
    synthetic_stream,
)

SIZES = [10, 50, 100]
ALGOS = {"sop": SOPDetector, "mcod": MCODDetector, "leap": LEAPDetector}


def _group(n):
    return build_workload("A", n, seed=700 + n, ranges=PATTERN_RANGES)


@pytest.mark.figure("fig7")
@pytest.mark.parametrize("n", SIZES)
def test_fig07_cpu_sop(benchmark, n):
    res = benchmark.pedantic(run_once, args=(SOPDetector, _group(n),
                                             synthetic_stream()),
                             rounds=1, iterations=1)
    assert res.boundaries > 0


@pytest.mark.figure("fig7")
@pytest.mark.parametrize("n", SIZES)
def test_fig07_cpu_mcod(benchmark, n):
    res = benchmark.pedantic(run_once, args=(MCODDetector, _group(n),
                                             synthetic_stream()),
                             rounds=1, iterations=1)
    assert res.boundaries > 0


@pytest.mark.figure("fig7")
@pytest.mark.parametrize("n", [10, 50])
def test_fig07_cpu_leap(benchmark, n):
    res = benchmark.pedantic(run_once, args=(LEAPDetector, _group(n),
                                             synthetic_stream()),
                             rounds=1, iterations=1)
    assert res.boundaries > 0


@pytest.mark.figure("fig7")
def test_fig07_series_report(benchmark):
    """Full Fig. 7(a)+(b) sweep: CPU and memory tables plus speedups."""
    series = benchmark.pedantic(
        figure_series,
        args=("Fig 7 (workload A: arbitrary r, synthetic)", "A", SIZES,
              synthetic_stream(), PATTERN_RANGES),
        kwargs={"leap_cap": 50, "seed_base": 700},
        rounds=1, iterations=1,
    )
    print_series(series)
    # the paper's qualitative claims, asserted on the measured series
    sop = series.cpu_ms("sop")
    mcod = series.cpu_ms("mcod")
    assert sop[-1] < mcod[-1], "SOP must beat MCOD at the largest workload"
    speedups = series.speedup_over("sop", "leap")
    assert speedups[1] and speedups[1] > 2, "LEAP must trail SOP clearly"
    # memory: SOP stores a fraction of MCOD's neighbor lists (Fig. 7b)
    assert series.memory_units("sop")[-1] < series.memory_units("mcod")[-1]
