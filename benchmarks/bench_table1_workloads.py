"""Table 1 + Table 2: workload construction and query-parser costs.

The paper's Tables 1 and 2 define the experiment grid rather than report
measurements; this module benchmarks what the SOP framework does with
them -- building each workload class and parsing it into a skyband plan
(Fig. 6's query parser) -- and prints the parameter ranges in use.
"""

import pytest

from repro import parse_workload
from repro.bench import build_workload, format_ranges

from bench_common import PATTERN_RANGES


@pytest.mark.figure("table1")
@pytest.mark.parametrize("spec", list("ABCDEFG"))
def test_build_workload_class(benchmark, spec):
    """Sampling 500 member queries for each Table 1 class."""
    group = benchmark(build_workload, spec, 500, 42, PATTERN_RANGES)
    assert len(group) == 500


@pytest.mark.figure("table1")
@pytest.mark.parametrize("n", [10, 100, 1000])
def test_parse_workload_scaling(benchmark, n):
    """Query parsing (k-subgroups, r-grid, Def. 6 table) scales in n."""
    group = build_workload("G", n, seed=1, ranges=PATTERN_RANGES)
    plan = benchmark(parse_workload, group)
    assert plan.k_max >= PATTERN_RANGES.k[0]
    assert plan.n_layers <= n


@pytest.mark.figure("table2")
def test_table2_ranges_report(benchmark):
    """Print the active (scaled) Table 2 parameter ranges."""
    text = benchmark(format_ranges, PATTERN_RANGES)
    print("\n[Table 2 / scaled] " + text)
