"""Sharded-runtime benchmark: shard-count sweep on Table 1 workloads.

Measures what value partitioning buys on one machine, using end-to-end
wall clock plus the runtime's merged meters:

* ``wall_s`` -- whole-run wall time (partition + shard pipelines + merge);
* ``cpu_ms_per_window`` -- the merged CPU meter (per-shard sums, i.e.
  total compute, not latency);
* ``distance_rows`` / ``python_insert_iters`` -- merged work counters:
  a point that *stays* an outlier scans its entire window (early
  termination never fires for it), so for outlier-bearing streams total
  scan work is superlinear in window population and splitting the
  window across shards shrinks *total* work, not just per-shard
  latency.  That reduction -- not OS parallelism -- is what produces
  single-core speedups, and it is what this file records.  Inlier-heavy
  configs with tiny slides sit at the other end: early termination
  already bounds their per-point scan work, so per-shard per-boundary
  overhead dominates and sharding can lose; the grid keeps such a
  config (workload F, slide 50) so the report shows both regimes.

Grid: workloads D and F (Table 1, the window-varying classes) at swift
windows {4k, 16k}, shard counts {1, 2, 4, 8} on the serial backend plus
4 shards on the process backend.  Like the paper's window-parameter
experiments (Figs. 11-12) the query radius is fixed at r=200 -- which is
also the regime where value partitioning pays: border replication copies
every point within ``r_max`` of a shard border, so the win scales with
``value spread / r_max`` (~50x here).  The vary-r classes (A, C, G)
sample r up to 2000 on the same 10k value box and replicate most of the
window into most shards; sharding them buys little and can cost
(DESIGN.md §9 quantifies this).  Output equality against the 1-shard run
is asserted on every config -- a speedup that changes answers is a bug,
not a result.

Schema v2: ``settings.skyband_impl`` records which skyband tier produced
the numbers (the SoA refactor made ``"soa"`` the detector default, so
v1 files measured the retired object tier and are not comparable).

Usage::

    PYTHONPATH=src python benchmarks/bench_shards.py          # full grid,
                                                              # writes BENCH_shards.json
    PYTHONPATH=src python benchmarks/bench_shards.py --quick  # CI smoke (small grid,
                                                              # no file unless --out)
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from dataclasses import replace

import numpy as np

from repro import (DetectorConfig, Runtime, compare_outputs,
                   make_synthetic_points)
from repro.bench import build_workload, default_ranges

N_QUERIES = 8
WINDOWS = (4_000, 16_000)
WORKLOADS = ("D", "F")
SHARDS = (1, 2, 4, 8)
PROCESS_SHARDS = (4,)
QUICK_WINDOWS = (1_000,)
QUICK_WORKLOADS = ("D",)
QUICK_SHARDS = (1, 2)
QUICK_PROCESS_SHARDS = (2,)
#: the paper's window-experiment radius (Figs. 11-12)
FIXED_R = 200.0
#: outlier fraction of the bench stream: outliers never early-terminate,
#: so they carry the superlinear scan work that sharding reduces
OUTLIER_RATE = 0.08
#: slide/window ratio 1/20, like the paper's defaults
SLIDE_DIV = 20
#: stream length in windows: one warm-up window + one steady-state window
WINDOWS_PER_STREAM = 2


def _ranges(window: int):
    """Benchmark ranges pinned to one swift-window size (cf. bench_refresh)."""
    slide = max(50, window // SLIDE_DIV)
    return replace(
        default_ranges(fixed_r=FIXED_R),
        fixed_win=window,
        fixed_slide=slide,
        win=(max(100, window // 4), window),
        slide=(50, slide),
    )


def _measure(group, stream, shards: int, backend: str) -> dict:
    runtime = Runtime(group, shards=shards, backend=backend)
    t0 = time.perf_counter()
    result = runtime.run(stream)
    wall = time.perf_counter() - t0
    work = result.work_stats_snapshot()
    return {
        "shards": shards,
        "backend": backend,
        "wall_s": round(wall, 3),
        "cpu_ms_per_window": round(result.cpu_ms_per_window, 3),
        "peak_memory_units": result.memory.peak_units,
        "distance_rows": int(work.get("distance_rows", 0)),
        "python_insert_iters": int(work.get("python_insert_iters", 0)),
        "kernel_launches": int(work.get("kernel_launches", 0)),
        "outputs": result.outputs,
    }


def run_config(spec: str, window: int, shard_counts, process_shards,
               seed: int = 11) -> dict:
    group = build_workload(spec, n_queries=N_QUERIES, seed=seed,
                           ranges=_ranges(window))
    # Sec. 6.1 generator with its mass spread across the value box
    # (8 clusters): value partitioning is a *spatial* technique, so the
    # bench stream must have spatial extent to partition -- with all
    # inlier mass in one or two clusters every shard border lands inside
    # a cluster and replication eats the win (DESIGN.md §9).  The 8%
    # outlier rate keeps full-window scans (the superlinear component
    # sharding reduces) a visible fraction of the work.
    stream = make_synthetic_points(
        WINDOWS_PER_STREAM * window, dim=2, outlier_rate=OUTLIER_RATE,
        seed=7, n_clusters=8, cluster_spread=120,
    )
    runs = [_measure(group, stream, s, "serial") for s in shard_counts]
    for s in process_shards:
        try:
            runs.append(_measure(group, stream, s, "process"))
        except OSError as exc:  # restricted sandboxes: record, don't fail
            print(f"  process backend unavailable ({exc}); skipping")
    baseline = runs[0]
    assert baseline["shards"] == 1 and baseline["backend"] == "serial"
    for run in runs[1:]:
        diffs = compare_outputs(baseline["outputs"], run.pop("outputs"))
        run["outputs_equal"] = not diffs
        if diffs:
            details = "\n  ".join(diffs[:5])
            raise SystemExit(
                f"FATAL: {run['shards']}-shard {run['backend']} run "
                f"diverges from 1 shard on workload {spec} window "
                f"{window}:\n  {details}"
            )
        run["wall_speedup"] = round(baseline["wall_s"] / run["wall_s"], 3) \
            if run["wall_s"] else float("nan")
        run["scan_work_ratio"] = round(
            baseline["distance_rows"] / run["distance_rows"], 3) \
            if run["distance_rows"] else float("nan")
    baseline.pop("outputs")
    baseline["outputs_equal"] = True
    baseline["wall_speedup"] = 1.0
    baseline["scan_work_ratio"] = 1.0
    return {
        "workload": spec,
        "window": window,
        "slide": group.swift.slide,
        "swift_window": group.swift.win,
        "n_queries": N_QUERIES,
        "stream_points": len(stream),
        "runs": runs,
    }


def run_grid(windows, workloads, shard_counts, process_shards) -> dict:
    configs = []
    for spec in workloads:
        for window in windows:
            cfg = run_config(spec, window, shard_counts, process_shards)
            configs.append(cfg)
            for run in cfg["runs"]:
                print(
                    f"workload {spec} win={window:>6} "
                    f"shards={run['shards']} ({run['backend']:>7}): "
                    f"{run['wall_s']:8.2f} s  "
                    f"speedup {run['wall_speedup']:5.2f}x  "
                    f"scan-work /{run['scan_work_ratio']:.2f}  "
                    f"outputs_equal={run['outputs_equal']}"
                )
    return {
        "schema": "bench_shards/v2",
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "settings": {
            "skyband_impl": DetectorConfig().skyband_impl,
            "n_queries": N_QUERIES,
            "windows_per_stream": WINDOWS_PER_STREAM,
            "slide_divisor": SLIDE_DIV,
            "fixed_r": FIXED_R,
            "outlier_rate": OUTLIER_RATE,
            "stream": f"make_synthetic_points(dim=2, "
                      f"outlier_rate={OUTLIER_RATE}, "
                      f"seed=7, n_clusters=8, cluster_spread=120)",
        },
        "configs": configs,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small grid, no JSON unless --out is given "
                             "(CI smoke test)")
    parser.add_argument("--out", default=None,
                        help="JSON output path (default BENCH_shards.json; "
                             "suppressed in --quick mode)")
    args = parser.parse_args(argv)
    if args.quick:
        report = run_grid(QUICK_WINDOWS, QUICK_WORKLOADS, QUICK_SHARDS,
                          QUICK_PROCESS_SHARDS)
    else:
        report = run_grid(WINDOWS, WORKLOADS, SHARDS, PROCESS_SHARDS)
    out = args.out if args.out is not None else (
        None if args.quick else "BENCH_shards.json")
    if out:
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
