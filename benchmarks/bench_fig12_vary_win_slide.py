"""Fig. 12: arbitrary win *and* slide (workload F) on the stock trace,
plus the intermediate workload E (arbitrary slide only) from Table 1.

Paper setup: k=30, r=200 fixed; win in [1K, 500K), slide in [50, 50K).
Paper result: SOP's CPU grows ~10x while the workload grows 100x
(28ms -> 282ms for 10 -> 1000 queries) and stays >= 2 orders of magnitude
ahead -- the swift-query strategy (slide = gcd) pays off because safe
inliers are discovered at the earliest possible boundary.
"""

import pytest

from repro import LEAPDetector, MCODDetector, SOPDetector
from repro.bench import build_workload

from bench_common import (
    WINDOW_RANGES,
    figure_series,
    print_series,
    run_once,
    stock_stream,
)

SIZES = [10, 50, 100]


def _group_f(n):
    return build_workload("F", n, seed=1200 + n, ranges=WINDOW_RANGES)


def _group_e(n):
    return build_workload("E", n, seed=1250 + n, ranges=WINDOW_RANGES)


@pytest.mark.figure("fig12")
@pytest.mark.parametrize("n", SIZES)
def test_fig12_cpu_sop(benchmark, n):
    res = benchmark.pedantic(run_once, args=(SOPDetector, _group_f(n),
                                             stock_stream()),
                             rounds=1, iterations=1)
    assert res.boundaries > 0


@pytest.mark.figure("fig12")
@pytest.mark.parametrize("n", SIZES)
def test_fig12_cpu_mcod(benchmark, n):
    res = benchmark.pedantic(run_once, args=(MCODDetector, _group_f(n),
                                             stock_stream()),
                             rounds=1, iterations=1)
    assert res.boundaries > 0


@pytest.mark.figure("fig12")
@pytest.mark.parametrize("n", [10, 50])
def test_fig12_cpu_leap(benchmark, n):
    res = benchmark.pedantic(run_once, args=(LEAPDetector, _group_f(n),
                                             stock_stream()),
                             rounds=1, iterations=1)
    assert res.boundaries > 0


@pytest.mark.figure("fig12")
def test_fig12_series_report(benchmark):
    series = benchmark.pedantic(
        figure_series,
        args=("Fig 12 (workload F: arbitrary win+slide, stock)", "F",
              SIZES, stock_stream(), WINDOW_RANGES),
        kwargs={"leap_cap": 50, "seed_base": 1200},
        rounds=1, iterations=1,
    )
    print_series(series)
    sop = series.cpu_ms("sop")
    # sub-linear growth claim: 10x queries costs far less than 10x CPU
    assert sop[-1] < 10 * sop[0]
    # Workload F is single-pattern, so our MCOD keeps its micro-cluster
    # fast path (stronger than the paper's range-scan comparator, see
    # DESIGN.md): CPU is parity; the robust separations are memory and
    # LEAP's per-query blow-up.
    assert series.memory_units("sop")[-1] < series.memory_units("mcod")[-1]
    assert series.cpu_ms("sop")[1] < series.cpu_ms("leap")[1]


@pytest.mark.figure("workloadE")
def test_workload_e_series_report(benchmark):
    """Table 1's workload E (arbitrary slide only): the swift query case."""
    series = benchmark.pedantic(
        figure_series,
        args=("Workload E (arbitrary slide, stock)", "E", SIZES,
              stock_stream(), WINDOW_RANGES),
        kwargs={"leap_cap": 50, "seed_base": 1250},
        rounds=1, iterations=1,
    )
    print_series(series)
    # Workload E is single-pattern, so our MCOD keeps its micro-cluster
    # fast path (stronger than the paper's comparator -- see DESIGN.md);
    # the robust claims are SOP's memory dominance and LEAP's per-query
    # blow-up.
    assert series.memory_units("sop")[-1] < series.memory_units("mcod")[-1]
    assert series.cpu_ms("sop")[1] < series.cpu_ms("leap")[1]
