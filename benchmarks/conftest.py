"""Benchmark-suite configuration: print figure reports after the run."""


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure(name): marks a benchmark as regenerating one "
        "paper figure/table"
    )
