"""Shared configuration for the figure benchmarks.

Every benchmark regenerates one table/figure of the paper's Sec. 6 at a
laptop-friendly scale.  Two environment variables grow the runs toward
paper scale:

* ``REPRO_BENCH_STREAM`` -- stream length in points (default 3000);
* ``REPRO_BENCH_SCALE``  -- multiplies window-shaped parameters and the
  workload sizes (default 1.0).

The *shape* of the results (which algorithm wins, by what factor, how the
curves scale with workload size) is the reproduction target; absolute
milliseconds depend on the substrate (pure Python here vs. the paper's
Java/CHAOS engine).
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro import make_stock_points, make_synthetic_points
from repro.bench import ScaledRanges

STREAM_N = int(os.environ.get("REPRO_BENCH_STREAM", "3000"))
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: pattern-parameter experiments (Figs. 7-10): r fixed at 700 like the
#: paper; the k range keeps the paper's k_max/window ratio (~10%), which
#: is what defeats the simulated most-restrictive query of MCOD
_PATTERN_BASE = ScaledRanges(
    r=(200.0, 2000.0),
    k=(10, 100),
    win=(300, 2000),
    slide=(50, 500),
    slide_quantum=50,
    fixed_r=700.0,
    fixed_k=10,
    fixed_win=1000,
    fixed_slide=100,
)
PATTERN_RANGES = _PATTERN_BASE.scale(SCALE) if SCALE != 1.0 else _PATTERN_BASE

#: window-parameter experiments (Figs. 11-12): r fixed at 200 like the paper
#: (but the stock projection lives on a smaller value scale, so the radius
#: is chosen to give a single-digit outlier percentage there)
WINDOW_RANGES = ScaledRanges(
    r=(2.0, 20.0),
    k=(3, 30),
    win=(300, 2000),
    slide=(50, 500),
    slide_quantum=50,
    fixed_r=8.0,
    fixed_k=5,
    fixed_win=1000,
    fixed_slide=100,
)


@lru_cache(maxsize=None)
def synthetic_stream(n: int = STREAM_N):
    """The Sec. 6.1 synthetic stream (Gaussian inliers + uniform outliers).

    Density is tuned to the paper's stated regime: the outlier rate stays
    in single digits even for the hardest (largest-k, smallest-r) member
    queries, i.e. an inlier has ~k_max neighbors within r_min.
    """
    return make_synthetic_points(n, dim=2, outlier_rate=0.02, seed=7,
                                 n_clusters=2, cluster_spread=185)


@lru_cache(maxsize=None)
def stock_stream(n: int = STREAM_N):
    """The simulated STT stock trace (see DESIGN.md substitution notes)."""
    return make_stock_points(n, seed=11)


def run_once(detector_cls, group, points, **kwargs):
    """One full detector run; the unit every benchmark measures."""
    detector = detector_cls(group, **kwargs)
    return detector.run(points)


def figure_series(title, spec, sizes, points, ranges,
                  mcod_cap=None, leap_cap=None, seed_base=0):
    """Run one paper figure's sweep (all algorithms x all workload sizes)."""
    from repro.bench import DEFAULT_ALGOS, build_workload, run_series

    return run_series(
        title, points, list(sizes),
        lambda n: build_workload(spec, n, seed=seed_base + n, ranges=ranges),
        DEFAULT_ALGOS(mcod_cap=mcod_cap, leap_cap=leap_cap),
    )


def print_series(series):
    """Emit the paper-style tables (visible with pytest -s / benchmark runs)."""
    from repro.bench import format_series

    print("\n" + format_series(series) + "\n")
