"""Fig. 8: arbitrary k (workload B) on the synthetic stream.

Paper setup: win=10K, slide=0.5K, r=700 fixed; k uniform in [30, 1500).
Paper result: SOP's CPU is *stable* as the query count grows, because its
cost is driven by the largest k in the workload rather than by the number
of queries ("the performance of SOP relies on the largest k value instead
of on the number of queries").  This module asserts exactly that shape.
"""

import pytest

from repro import LEAPDetector, MCODDetector, SOPDetector
from repro.bench import build_workload

from bench_common import (
    PATTERN_RANGES,
    figure_series,
    print_series,
    run_once,
    synthetic_stream,
)

SIZES = [10, 50, 100]


def _group(n):
    return build_workload("B", n, seed=800 + n, ranges=PATTERN_RANGES)


@pytest.mark.figure("fig8")
@pytest.mark.parametrize("n", SIZES)
def test_fig08_cpu_sop(benchmark, n):
    res = benchmark.pedantic(run_once, args=(SOPDetector, _group(n),
                                             synthetic_stream()),
                             rounds=1, iterations=1)
    assert res.boundaries > 0


@pytest.mark.figure("fig8")
@pytest.mark.parametrize("n", SIZES)
def test_fig08_cpu_mcod(benchmark, n):
    res = benchmark.pedantic(run_once, args=(MCODDetector, _group(n),
                                             synthetic_stream()),
                             rounds=1, iterations=1)
    assert res.boundaries > 0


@pytest.mark.figure("fig8")
@pytest.mark.parametrize("n", [10, 50])
def test_fig08_cpu_leap(benchmark, n):
    res = benchmark.pedantic(run_once, args=(LEAPDetector, _group(n),
                                             synthetic_stream()),
                             rounds=1, iterations=1)
    assert res.boundaries > 0


@pytest.mark.figure("fig8")
def test_fig08_series_report(benchmark):
    series = benchmark.pedantic(
        figure_series,
        args=("Fig 8 (workload B: arbitrary k, synthetic)", "B", SIZES,
              synthetic_stream(), PATTERN_RANGES),
        kwargs={"leap_cap": 50, "seed_base": 800},
        rounds=1, iterations=1,
    )
    print_series(series)
    sop = series.cpu_ms("sop")
    # SOP stability claim: 10x more queries costs far less than 10x CPU
    # (cost tracks k_max, which the random draws keep similar per size)
    assert sop[-1] < 4 * sop[0], "SOP CPU should be nearly flat in n"
    assert sop[-1] < series.cpu_ms("mcod")[-1]
