"""Fig. 11: arbitrary window sizes (workload D) on the stock trace.

Paper setup: STT stock data; slide=0.5K, r=200, k=30 fixed; win uniform
in [1K, 500K); the paper's augmented MCOD already adopts the swift-query
sharing, so its curves are flat in n -- but SOP still beats it by >= 2
orders of magnitude thanks to the safe-for-all early termination
(Sec. 4.1), while MCOD's range queries keep comparing every point.
"""

import pytest

from repro import LEAPDetector, MCODDetector, SOPDetector
from repro.bench import build_workload

from bench_common import (
    WINDOW_RANGES,
    figure_series,
    print_series,
    run_once,
    stock_stream,
)

SIZES = [10, 50, 100]


def _group(n):
    return build_workload("D", n, seed=1100 + n, ranges=WINDOW_RANGES)


@pytest.mark.figure("fig11")
@pytest.mark.parametrize("n", SIZES)
def test_fig11_cpu_sop(benchmark, n):
    res = benchmark.pedantic(run_once, args=(SOPDetector, _group(n),
                                             stock_stream()),
                             rounds=1, iterations=1)
    assert res.boundaries > 0


@pytest.mark.figure("fig11")
@pytest.mark.parametrize("n", SIZES)
def test_fig11_cpu_mcod(benchmark, n):
    res = benchmark.pedantic(run_once, args=(MCODDetector, _group(n),
                                             stock_stream()),
                             rounds=1, iterations=1)
    assert res.boundaries > 0


@pytest.mark.figure("fig11")
@pytest.mark.parametrize("n", [10, 50])
def test_fig11_cpu_leap(benchmark, n):
    res = benchmark.pedantic(run_once, args=(LEAPDetector, _group(n),
                                             stock_stream()),
                             rounds=1, iterations=1)
    assert res.boundaries > 0


@pytest.mark.figure("fig11")
def test_fig11_series_report(benchmark):
    series = benchmark.pedantic(
        figure_series,
        args=("Fig 11 (workload D: arbitrary win, stock)", "D", SIZES,
              stock_stream(), WINDOW_RANGES),
        kwargs={"leap_cap": 50, "seed_base": 1100},
        rounds=1, iterations=1,
    )
    print_series(series)
    assert series.cpu_ms("sop")[-1] < series.cpu_ms("mcod")[-1]
    assert series.memory_units("sop")[-1] < series.memory_units("mcod")[-1]
