"""Fig. 13: all four parameters arbitrary (workload G), huge workloads.

Paper setup: synthetic data; workload sizes {100, 1000, 10000, 50000};
all of r, k, win, slide random per query.  Paper result: SOP is "the only
known method that scales" -- its CPU grows from 32ms to 892ms while the
workload grows 500x, and its memory footprint stays a sliver of the
alternatives'.

Scaled setup: sizes {50, 200, 1000} by default (REPRO_BENCH_SCALE grows
them); MCOD/LEAP capped at 200/50 -- beyond that they genuinely do not
finish in tolerable time, which is the figure's message.
"""

import pytest

from repro import MCODDetector, SOPDetector
from repro.bench import build_workload

from bench_common import (
    PATTERN_RANGES,
    SCALE,
    figure_series,
    print_series,
    run_once,
    synthetic_stream,
)

SIZES = [int(50 * SCALE), int(200 * SCALE), int(1000 * SCALE)]
_RANGES = PATTERN_RANGES


def _group(n):
    return build_workload("G", n, seed=1300 + n, ranges=_RANGES)


@pytest.mark.figure("fig13")
@pytest.mark.parametrize("n", SIZES)
def test_fig13_cpu_sop(benchmark, n):
    res = benchmark.pedantic(run_once, args=(SOPDetector, _group(n),
                                             synthetic_stream()),
                             rounds=1, iterations=1)
    assert res.boundaries > 0


@pytest.mark.figure("fig13")
@pytest.mark.parametrize("n", SIZES[:2])
def test_fig13_cpu_mcod(benchmark, n):
    res = benchmark.pedantic(run_once, args=(MCODDetector, _group(n),
                                             synthetic_stream()),
                             rounds=1, iterations=1)
    assert res.boundaries > 0


@pytest.mark.figure("fig13")
def test_fig13_series_report(benchmark):
    series = benchmark.pedantic(
        figure_series,
        args=("Fig 13 (workload G: all parameters arbitrary, synthetic)",
              "G", SIZES, synthetic_stream(), _RANGES),
        kwargs={"mcod_cap": SIZES[1], "leap_cap": SIZES[0],
                "seed_base": 1300},
        rounds=1, iterations=1,
    )
    print_series(series)
    sop = series.cpu_ms("sop")
    # scalability claim: 20x more queries costs well under 20x CPU
    assert sop[-1] < 20 * sop[0]
    # SOP ahead of MCOD wherever MCOD finishes
    assert sop[1] < series.cpu_ms("mcod")[1]
    # memory: shared evidence vs per-query/all-neighbor storage
    assert series.memory_units("sop")[1] < series.memory_units("mcod")[1]
