"""Per-boundary refresh microbenchmark: batched engine vs per-point path.

Measures what the batched K-SKY refresh engine buys, per boundary, using
the detector's own :class:`repro.metrics.RefreshProfile` counters:

* ``mean_refresh_ms`` -- wall time inside ``SOPDetector._refresh``;
* ``kernel_launches`` -- numpy distance-kernel launches (the quantity the
  batched engine exists to shrink from O(live points) to O(chunks));
* ``batch_rows`` / ``python_insert_iters`` -- how much work went through
  the batched path and how many candidates the scans examined.

Grid: workloads A and G (Table 1) at swift windows {1k, 4k, 16k}.  The
per-point path (``use_batched_refresh=False``) is the seed behaviour, so
the recorded speedups track the engine's trajectory across PRs.  Output
equality between the two paths is asserted on every config -- a speedup
that changes answers is a bug, not a result.

Usage::

    PYTHONPATH=src python benchmarks/bench_refresh.py            # full grid,
                                                                 # writes BENCH_refresh.json
    PYTHONPATH=src python benchmarks/bench_refresh.py --quick    # CI smoke (small grid,
                                                                 # no file unless --out)
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from dataclasses import replace

import numpy as np

from repro import SOPDetector, compare_outputs, make_synthetic_points
from repro.bench import build_workload, default_ranges

N_QUERIES = 8
WINDOWS = (1_000, 4_000, 16_000)
WORKLOADS = ("A", "G")
QUICK_WINDOWS = (1_000,)
QUICK_WORKLOADS = ("A",)
#: slide/window ratio 1/20, like the paper's defaults
SLIDE_DIV = 20
#: stream length in windows: one warm-up window + one steady-state window
WINDOWS_PER_STREAM = 2


def _ranges(window: int):
    """Benchmark ranges pinned to one swift-window size.

    Fixed-window workloads (A) use ``window`` exactly; varying-window
    workloads (G) sample from ``(window/4, window]`` so the swift window
    (max of member windows) stays at most ``window``.
    """
    slide = max(50, window // SLIDE_DIV)
    return replace(
        default_ranges(),
        fixed_win=window,
        fixed_slide=slide,
        win=(max(100, window // 4), window),
        slide=(50, slide),
    )


def _profile_dict(det: SOPDetector) -> dict:
    prof = det.profile
    return {
        "boundaries": prof.boundaries,
        "refresh_ns": prof.refresh_ns,
        "mean_refresh_ms": round(prof.mean_refresh_ms, 4),
        "kernel_launches": prof.kernel_launches,
        "kernel_launches_per_boundary": round(prof.mean_kernel_launches, 2),
        "batch_rows": prof.batch_rows,
        "python_insert_iters": prof.python_insert_iters,
        "distance_rows": det.buffer.distance_rows,
        "ksky_runs": det.stats["ksky_runs"],
        "batched_scans": det.stats["batched_scans"],
    }


def run_config(spec: str, window: int, seed: int = 11) -> dict:
    group = build_workload(spec, n_queries=N_QUERIES, seed=seed,
                           ranges=_ranges(window))
    stream = make_synthetic_points(
        WINDOWS_PER_STREAM * window, dim=2, outlier_rate=0.02, seed=7,
        n_clusters=2, cluster_spread=185,
    )
    runs = {}
    for label, flag in (("batched", True), ("per_point", False)):
        det = SOPDetector(group, use_batched_refresh=flag)
        res = det.run(stream)
        runs[label] = (det, res)
    det_b, res_b = runs["batched"]
    det_p, res_p = runs["per_point"]
    # the refactor oracle: answers, memory accounting, and deterministic
    # work counters must all be identical between the two strategies
    diffs = compare_outputs(res_p.outputs, res_b.outputs)
    if res_b.memory.peak_units != res_p.memory.peak_units:
        diffs.append(
            f"peak memory units: per-point {res_p.memory.peak_units} "
            f"vs batched {res_b.memory.peak_units}"
        )
    for key in ("ksky_runs", "points_examined", "fully_safe_marked"):
        if det_b.stats[key] != det_p.stats[key]:
            diffs.append(f"stats[{key}]: per-point {det_p.stats[key]} "
                         f"vs batched {det_b.stats[key]}")
    if det_b.buffer.distance_rows != det_p.buffer.distance_rows:
        diffs.append(
            f"distance_rows: per-point {det_p.buffer.distance_rows} "
            f"vs batched {det_b.buffer.distance_rows}"
        )
    equal = not diffs
    speedup = (det_p.profile.refresh_ns / det_b.profile.refresh_ns
               if det_b.profile.refresh_ns else float("nan"))
    return {
        "workload": spec,
        "window": window,
        "slide": group.swift.slide,
        "swift_window": group.swift.win,
        "n_queries": N_QUERIES,
        "stream_points": len(stream),
        "batched": _profile_dict(det_b),
        "per_point": _profile_dict(det_p),
        "refresh_speedup": round(speedup, 3),
        "outputs_equal": equal,
        "equality_diffs": diffs[:5],
    }


def run_grid(windows, workloads) -> dict:
    configs = []
    for spec in workloads:
        for window in windows:
            cfg = run_config(spec, window)
            configs.append(cfg)
            print(
                f"workload {cfg['workload']} win={cfg['window']:>6}: "
                f"per-point {cfg['per_point']['mean_refresh_ms']:8.2f} ms/b "
                f"({cfg['per_point']['kernel_launches_per_boundary']:.0f} kernels/b)"
                f" -> batched {cfg['batched']['mean_refresh_ms']:8.2f} ms/b "
                f"({cfg['batched']['kernel_launches_per_boundary']:.0f} kernels/b)"
                f"  speedup {cfg['refresh_speedup']:.2f}x"
                f"  outputs_equal={cfg['outputs_equal']}"
            )
            if not cfg["outputs_equal"]:
                details = "\n  ".join(cfg["equality_diffs"])
                raise SystemExit(
                    f"FATAL: batched and per-point runs diverge on "
                    f"workload {spec} window {window}:\n  {details}"
                )
    return {
        "schema": "bench_refresh/v1",
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "settings": {
            "n_queries": N_QUERIES,
            "windows_per_stream": WINDOWS_PER_STREAM,
            "slide_divisor": SLIDE_DIV,
            "stream": "make_synthetic_points(dim=2, outlier_rate=0.02, "
                      "seed=7, n_clusters=2, cluster_spread=185)",
        },
        "configs": configs,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small grid, no JSON unless --out is given "
                             "(CI smoke test)")
    parser.add_argument("--out", default=None,
                        help="JSON output path (default BENCH_refresh.json; "
                             "suppressed in --quick mode)")
    args = parser.parse_args(argv)
    if args.quick:
        report = run_grid(QUICK_WINDOWS, QUICK_WORKLOADS)
    else:
        report = run_grid(WINDOWS, WORKLOADS)
    out = args.out if args.out is not None else (
        None if args.quick else "BENCH_refresh.json")
    if out:
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
