"""Grid index vs vectorized linear scan: the substrate trade-off.

The related-work systems ([6], [13], [15]) index the window with a grid;
our detectors use vectorized linear scans instead.  This benchmark
quantifies the crossover on the synthetic stream: per-query cost of
``GridIndex.range_count`` (early-stopping) against a full numpy distance
scan, across window sizes.  At laptop scale the numpy scan wins for the
window sizes the other benchmarks use -- which is why it is the default
-- while the grid's advantage grows with window size and small radii.
"""

import pytest

from repro import WindowBuffer, euclidean
from repro.bench import format_table
from repro.index import IndexedWindow

from bench_common import synthetic_stream

RADII = (200.0, 700.0)


def _windows(n):
    pts = synthetic_stream()[:n]
    linear = WindowBuffer(euclidean)
    linear.extend(pts)
    grid = IndexedWindow(cell_size=700.0)
    grid.extend(pts)
    return pts, linear, grid


@pytest.mark.figure("index")
@pytest.mark.parametrize("n", [500, 2000])
def test_linear_scan_queries(benchmark, n):
    pts, linear, _ = _windows(n)

    def run():
        total = 0
        for p in pts[::10]:
            d = linear.distances_from(p.values)
            total += int((d <= 700.0).sum())
        return total

    assert benchmark(run) > 0


@pytest.mark.figure("index")
@pytest.mark.parametrize("n", [500, 2000])
def test_grid_queries(benchmark, n):
    pts, _, grid = _windows(n)

    def run():
        total = 0
        for p in pts[::10]:
            total += grid.neighbor_count(p.values, 700.0)
        return total

    assert benchmark(run) > 0


@pytest.mark.figure("index")
def test_grid_early_stop_report(benchmark):
    """Early-stopping range counts ('at least k?') are the grid's niche."""
    pts, linear, grid = _windows(2000)

    def sweep():
        rows = {}
        for r in RADII:
            full = grid_count = 0
            for p in pts[::20]:
                d = linear.distances_from(p.values)
                full += int((d <= r).sum())
                grid_count += grid.neighbor_count(p.values, r, stop_at=10)
            rows[r] = (float(full), float(grid_count))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    radii = list(rows)
    print("\n" + format_table(
        "neighbor mass: full scan vs grid stop-at-10 (2000-pt window)",
        "radius", [int(r) for r in radii],
        ["full_count", "grid_capped"],
        [[rows[r][0] for r in radii], [rows[r][1] for r in radii]],
    ) + "\n")
    # the capped count is bounded by 10 per probe by construction
    assert all(rows[r][1] <= 10 * len(pts[::20]) for r in radii)
