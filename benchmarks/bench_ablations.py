"""Ablations of SOP's design choices (DESIGN.md Sec. 5 index).

Each switch removes one of the paper's optimizations while provably
keeping outputs identical (tests/test_sop.py asserts equality); the
benchmarks quantify what each buys:

* **safe-inlier pruning** (Sec. 3.2.2 / 4.1 safe-for-all): without it,
  every live point re-runs K-SKY at every boundary;
* **least examination** (Alg. 1 lines 3-5): without it, surviving points
  rescan the entire window instead of (new arrivals + old skyband);
* **eager refresh** (Sec. 4.2 swift query): lazy mode refreshes evidence
  only at boundaries where a member query is due -- cheaper per tick but
  discovers safe inliers later;
* **batched refresh** (an engine choice of this reproduction): without it,
  every refreshed point launches its own numpy distance kernels instead of
  sharing one pairwise kernel per chunk (see ``benchmarks/bench_refresh.py``
  for the dedicated microbenchmark);
* **chunk size**: the vectorized-scan block size (an implementation knob
  of this reproduction, not of the paper).
"""

import pytest

from repro import SOPDetector
from repro.bench import build_workload, format_table

from bench_common import PATTERN_RANGES, run_once, synthetic_stream

N_QUERIES = 30


def _group():
    return build_workload("G", N_QUERIES, seed=555, ranges=PATTERN_RANGES)


VARIANTS = {
    "full": {},
    "no-safe-inliers": {"use_safe_inliers": False},
    "no-least-exam": {"use_least_examination": False},
    "lazy-refresh": {"eager": False},
    "no-batched": {"use_batched_refresh": False},
}


@pytest.mark.figure("ablation")
@pytest.mark.parametrize("variant", list(VARIANTS), ids=list(VARIANTS))
def test_ablation_variant(benchmark, variant):
    res = benchmark.pedantic(
        run_once, args=(SOPDetector, _group(), synthetic_stream()),
        kwargs=VARIANTS[variant], rounds=1, iterations=1)
    assert res.boundaries > 0


@pytest.mark.figure("ablation")
def test_ablation_report(benchmark):
    def sweep():
        rows = {}
        for name, kwargs in VARIANTS.items():
            det = SOPDetector(_group(), **kwargs)
            res = det.run(synthetic_stream())
            rows[name] = (res.cpu_ms_per_window, res.peak_memory_units,
                          det.stats["points_examined"])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    names = list(rows)
    print("\n" + format_table(
        "SOP ablations (30-query workload G)",
        "variant", names, ["cpu_ms/w", "mem_units", "examined"],
        [
            [rows[n][0] for n in names],
            [float(rows[n][1]) for n in names],
            [float(rows[n][2]) for n in names],
        ],
    ) + "\n")
    # the optimizations must actually help on this inlier-dominated stream
    assert rows["full"][2] <= rows["no-safe-inliers"][2]
    assert rows["full"][2] <= rows["no-least-exam"][2]


@pytest.mark.figure("ablation")
@pytest.mark.parametrize("chunk", [32, 256, 1024])
def test_chunk_size_sensitivity(benchmark, chunk):
    res = benchmark.pedantic(
        run_once, args=(SOPDetector, _group(), synthetic_stream()),
        kwargs={"chunk_size": chunk}, rounds=1, iterations=1)
    assert res.boundaries > 0
