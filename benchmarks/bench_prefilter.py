"""Tiered pre-filter benchmark: screen cost vs exact-tier work saved.

Measures what the first-tier inlier screen (``repro.core.prefilter``)
buys end to end.  For each window size the grid runs a ``prefilter=
"none"`` baseline, both screens in exact mode, and both in fast mode,
recording ``cpu_ms_per_window`` (the paper's CPU metric), wall time, and
the tier counters (screened / suspects / pruned, plus the exact tier's
``points_examined`` and ``distance_rows``).

Exact-mode output equality against the baseline is *asserted fatally*:
the screen's contract is bit-identical outputs (DESIGN.md section 14),
so a speedup that changes answers aborts the bench.  Fast mode is
allowed to differ; for it the report stores *measured recall*
(|detected AND baseline| / |baseline| over all (query, boundary) cells).
Fast-mode precision is 1.0 by construction -- a pruned point is merely
excluded from reports, never promoted -- and the bench asserts that
containment too.

The headline stream is the regime the screen is built for, matching the
paper's high-volume setting: large slide (win/8 -- at-arrival
certification needs same-batch successors), clustered inlier mass
(8 clusters, spread 80 at r=200 -- certifiable density), and a 1%
outlier rate (outlier deep scans are irreducible work no sound screen
can remove).  A second, adversarial slide (win/20) is included so the
report also shows the screen's backoff floor rather than only its best
case.  ``refresh_strategy`` is pinned to ``batched``: the auto
controller's probe timing is nondeterministic and would blur the
A/B comparison.

Usage::

    PYTHONPATH=src python benchmarks/bench_prefilter.py          # full grid,
                                                                 # writes BENCH_prefilter.json
    PYTHONPATH=src python benchmarks/bench_prefilter.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

import numpy as np

from repro import (DetectorConfig, OutlierQuery, QueryGroup, SOPDetector,
                   WindowSpec, compare_outputs, make_synthetic_points)

#: (prefilter, prefilter_mode) grid; "none" is the exact-tier baseline
MODES = (
    ("none", "exact"),
    ("qn", "exact"),
    ("sensitivity", "exact"),
    ("qn", "fast"),
    ("sensitivity", "fast"),
)
WINDOWS = (16_384, 32_768)
#: headline slide divisor (win/8) plus the adversarial small slide
SLIDE_DIVS = (8, 20)
QUICK_WINDOWS = (4_096,)
QUICK_SLIDE_DIVS = (8,)
#: the paper's window-experiment radius (Figs. 11-12)
FIXED_R = 200.0
#: inlier mass must be dense relative to r for certification to fire
CLUSTER_SPREAD = 80
N_CLUSTERS = 8
OUTLIER_RATE = 0.01
#: member k values; Table 2 centre of mass, spread across the k grid
K_VALUES = (10, 20, 30, 15, 25)
#: member window fractions of the swift window (mixed-win workload)
WIN_DIVS = (1, 2, 1, 4, 1)
WINDOWS_PER_STREAM = 2
#: acceptance floor for the headline configs (exact mode, slide win/8)
TARGET_SPEEDUP = 1.5


def _group(window: int, slide: int) -> QueryGroup:
    return QueryGroup([
        OutlierQuery(r=FIXED_R, k=k,
                     window=WindowSpec(win=window // d, slide=slide,
                                       kind="count"))
        for k, d in zip(K_VALUES, WIN_DIVS)
    ])


def _measure(group, stream, prefilter: str, mode: str) -> dict:
    cfg = DetectorConfig(prefilter=prefilter, prefilter_mode=mode,
                         refresh_strategy="batched")
    det = SOPDetector(group, config=cfg)
    t0 = time.perf_counter()
    result = det.run(stream)
    wall = time.perf_counter() - t0
    work = det.work_stats()
    return {
        "prefilter": prefilter,
        "mode": mode,
        "wall_s": round(wall, 3),
        "cpu_ms_per_window": round(result.cpu_ms_per_window, 3),
        "peak_memory_units": result.memory.peak_units,
        "points_examined": int(det.stats["points_examined"]),
        "ksky_runs": int(det.stats["ksky_runs"]),
        "fully_safe_marked": int(det.stats["fully_safe_marked"]),
        "distance_rows": int(work["distance_rows"]),
        "prefilter_screened": int(work["prefilter_screened"]),
        "prefilter_suspects": int(work["prefilter_suspects"]),
        "prefilter_pruned": int(work["prefilter_pruned"]),
        "outputs": result.outputs,
    }


def _recall(base_outputs, fast_outputs) -> float:
    hits = total = 0
    for key, seqs in base_outputs.items():
        total += len(seqs)
        hits += len(seqs & fast_outputs.get(key, frozenset()))
    return 1.0 if total == 0 else hits / total


def run_config(window: int, slide_div: int, seed: int = 11) -> dict:
    slide = window // slide_div
    group = _group(window, slide)
    stream = make_synthetic_points(
        WINDOWS_PER_STREAM * window, dim=2, outlier_rate=OUTLIER_RATE,
        seed=seed, n_clusters=N_CLUSTERS, cluster_spread=CLUSTER_SPREAD,
    )
    runs = [_measure(group, stream, pf, mode) for pf, mode in MODES]
    base = runs[0]
    assert base["prefilter"] == "none"
    for run in runs[1:]:
        outputs = run.pop("outputs")
        if run["mode"] == "exact":
            diffs = compare_outputs(base["outputs"], outputs)
            if diffs:
                details = "\n  ".join(diffs[:5])
                raise SystemExit(
                    f"FATAL: exact-mode prefilter={run['prefilter']} "
                    f"diverges from baseline at window {window} slide "
                    f"{slide}:\n  {details}"
                )
            run["outputs_equal"] = True
            if run["fully_safe_marked"] != base["fully_safe_marked"]:
                raise SystemExit(
                    f"FATAL: exact-mode prefilter={run['prefilter']} "
                    f"fully_safe_marked {run['fully_safe_marked']} != "
                    f"baseline {base['fully_safe_marked']} -- the screen "
                    f"certified a point the exact tier would not have"
                )
        else:
            for key, seqs in outputs.items():
                extra = seqs - base["outputs"].get(key, frozenset())
                if extra:
                    raise SystemExit(
                        f"FATAL: fast-mode prefilter={run['prefilter']} "
                        f"reported non-baseline outliers {sorted(extra)[:8]}"
                        f" at query={key[0]} t={key[1]}"
                    )
            run["recall"] = round(_recall(base["outputs"], outputs), 4)
            run["precision"] = 1.0  # asserted above
        run["cpu_speedup"] = round(
            base["cpu_ms_per_window"] / run["cpu_ms_per_window"], 3) \
            if run["cpu_ms_per_window"] else float("nan")
        run["examined_ratio"] = round(
            run["points_examined"] / base["points_examined"], 3) \
            if base["points_examined"] else float("nan")
    base.pop("outputs")
    base["outputs_equal"] = True
    base["cpu_speedup"] = 1.0
    base["examined_ratio"] = 1.0
    return {
        "window": window,
        "slide": slide,
        "slide_divisor": slide_div,
        "headline": slide_div == SLIDE_DIVS[0],
        "n_queries": len(group),
        "stream_points": len(stream),
        "runs": runs,
    }


def run_grid(windows, slide_divs) -> dict:
    configs = []
    for window in windows:
        for slide_div in slide_divs:
            cfg = run_config(window, slide_div)
            configs.append(cfg)
            for run in cfg["runs"]:
                extra = (f"recall={run['recall']:.3f}"
                         if "recall" in run else
                         f"outputs_equal={run['outputs_equal']}")
                print(
                    f"win={window:>6} slide=win/{slide_div:<2} "
                    f"{run['prefilter']:>11}/{run['mode']:<5} "
                    f"{run['wall_s']:8.2f} s  "
                    f"cpu-speedup {run['cpu_speedup']:5.2f}x  "
                    f"pruned={run['prefilter_pruned']:>7} "
                    f"examined/{run['examined_ratio']:.2f}  {extra}"
                )
    return {
        "schema": "bench_prefilter/v1",
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "settings": {
            "skyband_impl": DetectorConfig().skyband_impl,
            "refresh_strategy": "batched",
            "fixed_r": FIXED_R,
            "k_values": list(K_VALUES),
            "win_divisors": list(WIN_DIVS),
            "slide_divisors": list(slide_divs),
            "outlier_rate": OUTLIER_RATE,
            "windows_per_stream": WINDOWS_PER_STREAM,
            "target_speedup": TARGET_SPEEDUP,
            "stream": f"make_synthetic_points(dim=2, "
                      f"outlier_rate={OUTLIER_RATE}, seed=11, "
                      f"n_clusters={N_CLUSTERS}, "
                      f"cluster_spread={CLUSTER_SPREAD})",
        },
        "configs": configs,
    }


def check_target(report) -> bool:
    """True iff every headline exact-mode run clears TARGET_SPEEDUP."""
    ok = True
    for cfg in report["configs"]:
        if not cfg["headline"]:
            continue
        for run in cfg["runs"]:
            if run["prefilter"] == "none" or run["mode"] != "exact":
                continue
            if run["cpu_speedup"] < TARGET_SPEEDUP:
                print(
                    f"WARNING: headline win={cfg['window']} "
                    f"{run['prefilter']}/exact speedup "
                    f"{run['cpu_speedup']:.2f}x below target "
                    f"{TARGET_SPEEDUP}x"
                )
                ok = False
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small grid, no JSON unless --out is given "
                             "(CI smoke test)")
    parser.add_argument("--out", default=None,
                        help="JSON output path (default BENCH_prefilter.json;"
                             " suppressed in --quick mode)")
    args = parser.parse_args(argv)
    if args.quick:
        report = run_grid(QUICK_WINDOWS, QUICK_SLIDE_DIVS)
    else:
        report = run_grid(WINDOWS, SLIDE_DIVS)
        check_target(report)
    out = args.out if args.out is not None else (
        None if args.quick else "BENCH_prefilter.json")
    if out:
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
