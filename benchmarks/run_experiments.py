#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation (Sec. 6).

Runs the full experiment grid -- Figs. 7, 8, 9, 10(a), 10(b), 11, 12, 13
plus workload E and the SOP ablations -- and prints paper-style tables.
The output of this script is the source for EXPERIMENTS.md.

Usage::

    python benchmarks/run_experiments.py [--stream N] [--sizes a,b,c]
                                         [--figures fig7,fig9,...]

Environment: REPRO_BENCH_STREAM / REPRO_BENCH_SCALE also apply (see
``bench_common``).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_common import (  # noqa: E402
    PATTERN_RANGES,
    WINDOW_RANGES,
    figure_series,
    stock_stream,
    synthetic_stream,
)

from repro import (  # noqa: E402
    LEAPDetector,
    MCODDetector,
    MultiAttributeDetector,
    SOPDetector,
    make_synthetic_points,
)
from repro.bench import build_workload, format_ranges, format_series, format_table


def fig7(sizes, leap_cap):
    return format_series(figure_series(
        "Fig 7 (workload A: arbitrary r, synthetic)", "A", sizes,
        synthetic_stream(), PATTERN_RANGES, leap_cap=leap_cap,
        seed_base=700))


def fig8(sizes, leap_cap):
    return format_series(figure_series(
        "Fig 8 (workload B: arbitrary k, synthetic)", "B", sizes,
        synthetic_stream(), PATTERN_RANGES, leap_cap=leap_cap,
        seed_base=800))


def fig9(sizes, leap_cap):
    return format_series(figure_series(
        "Fig 9 (workload C: arbitrary k and r, synthetic)", "C", sizes,
        synthetic_stream(), PATTERN_RANGES, leap_cap=leap_cap,
        seed_base=900))


def fig10a(sizes, leap_cap):
    return format_series(figure_series(
        "Fig 10(a) (small workloads, same attributes)", "C", [1, 2, 4, 8],
        synthetic_stream(), PATTERN_RANGES, seed_base=1000))


def fig10b(sizes, leap_cap):
    pts = make_synthetic_points(2000, dim=3, outlier_rate=0.03, seed=7)
    attr_sets = [(0, 1), (1, 2), (0, 2)]
    factories = {"sop": SOPDetector, "mcod": MCODDetector,
                 "leap": LEAPDetector}
    cpu = {name: [] for name in factories}
    mem = {name: [] for name in factories}
    for per_group in (1, 2, 4):
        queries = []
        for g_idx, attrs in enumerate(attr_sets):
            base = build_workload("C", per_group, seed=1100 + g_idx,
                                  ranges=PATTERN_RANGES)
            queries.extend(q.replace(attributes=attrs) for q in base)
        for name, factory in factories.items():
            res = MultiAttributeDetector(queries, factory=factory).run(pts)
            cpu[name].append(res.cpu_ms_per_window)
            mem[name].append(float(res.peak_memory_units))
    return "\n\n".join([
        format_table("Fig 10(b) (3 attribute groups) -- CPU per window (ms)",
                     "queries/group", [1, 2, 4], list(cpu),
                     list(cpu.values())),
        format_table("Fig 10(b) (3 attribute groups) -- peak memory (units)",
                     "queries/group", [1, 2, 4], list(mem),
                     list(mem.values())),
    ])


def fig11(sizes, leap_cap):
    return format_series(figure_series(
        "Fig 11 (workload D: arbitrary win, stock)", "D", sizes,
        stock_stream(), WINDOW_RANGES, leap_cap=leap_cap, seed_base=1100))


def fig12(sizes, leap_cap):
    return format_series(figure_series(
        "Fig 12 (workload F: arbitrary win+slide, stock)", "F", sizes,
        stock_stream(), WINDOW_RANGES, leap_cap=leap_cap, seed_base=1200))


def workload_e(sizes, leap_cap):
    return format_series(figure_series(
        "Workload E (arbitrary slide, stock)", "E", sizes,
        stock_stream(), WINDOW_RANGES, leap_cap=leap_cap, seed_base=1250))


def fig13(sizes, leap_cap):
    big = [max(sizes), 5 * max(sizes), 20 * max(sizes)]
    return format_series(figure_series(
        "Fig 13 (workload G: all parameters arbitrary, synthetic)", "G",
        big, synthetic_stream(), PATTERN_RANGES,
        mcod_cap=big[1], leap_cap=big[0], seed_base=1300))


def ablations(sizes, leap_cap):
    group = build_workload("G", 30, seed=555, ranges=PATTERN_RANGES)
    variants = {
        "full": {},
        "no-safe-inliers": {"use_safe_inliers": False},
        "no-least-exam": {"use_least_examination": False},
        "lazy-refresh": {"eager": False},
    }
    rows = {}
    for name, kwargs in variants.items():
        det = SOPDetector(group, **kwargs)
        res = det.run(synthetic_stream())
        rows[name] = (res.cpu_ms_per_window, float(res.peak_memory_units),
                      float(det.stats["points_examined"]))
    names = list(rows)
    return format_table(
        "SOP ablations (30-query workload G, synthetic)",
        "variant", names, ["cpu_ms/w", "mem_units", "examined"],
        [[rows[n][i] for n in names] for i in range(3)],
    )


FIGURES = {
    "fig7": fig7, "fig8": fig8, "fig9": fig9, "fig10a": fig10a,
    "fig10b": fig10b, "fig11": fig11, "fig12": fig12,
    "workloadE": workload_e, "fig13": fig13, "ablations": ablations,
}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", default="10,50,100",
                        help="workload sizes for the sweeps")
    parser.add_argument("--leap-cap", type=int, default=50,
                        help="largest workload LEAP is asked to run")
    parser.add_argument("--figures", default=",".join(FIGURES),
                        help="comma-separated subset of figures to run")
    parser.add_argument("--out", default=None,
                        help="also write the report to this file")
    args = parser.parse_args(argv)
    sizes = [int(s) for s in args.sizes.split(",")]

    chunks = [
        "SOP reproduction -- full experiment regeneration",
        "stream: %d synthetic / %d stock points" % (
            len(synthetic_stream()), len(stock_stream())),
        "pattern ranges: " + format_ranges(PATTERN_RANGES),
        "window ranges:  " + format_ranges(WINDOW_RANGES),
        "",
    ]
    for name in args.figures.split(","):
        fn = FIGURES[name.strip()]
        started = time.perf_counter()
        chunks.append(fn(sizes, args.leap_cap))
        chunks.append(f"[{name}: {time.perf_counter() - started:.1f}s]")
        chunks.append("")
        print("\n".join(chunks[-3:]))
    report = "\n".join(chunks)
    if args.out:
        Path(args.out).write_text(report)
        print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
